package core

import (
	"testing"
	"time"

	"clash/internal/ilp"
	"clash/internal/workload"
)

func TestWarmStartFeasibleAndBounding(t *testing.T) {
	// In the paper's formulation (no cross-query partition-consistency
	// rows) the warm start must be feasible and never worse than the
	// summed per-query optima, so MQO results can only improve on the
	// Individual baseline even under solver time limits. (With the
	// strengthened consistency rows MQO may legitimately exceed the
	// Individual sum: independent deployments partition their private
	// stores freely, a shared store must compromise.)
	env := workload.NewEnv(10, 100)
	qs := env.RandomQueries(15, 3, 3)
	est := env.Estimates()
	opts := Options{StoreParallelism: 4, NoPartitionConsistency: true,
		Solver: ilp.Options{TimeLimit: 5 * time.Second}}
	b := newBuilder(opts, qs, est)
	b.enumerateMIRs()
	if err := b.generateCandidates(); err != nil {
		t.Fatal(err)
	}
	b.buildModel()

	ws := b.warmStart()
	if ws == nil {
		t.Fatal("no warm start produced")
	}
	if err := b.model.Feasible(ws, 1e-5); err != nil {
		t.Fatalf("warm start infeasible: %v", err)
	}
	wsObj := b.model.ObjectiveOf(ws)

	indiv, err := NewOptimizer(opts).IndividualCost(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if wsObj > indiv+1e-6 {
		t.Errorf("warm start %g worse than individual sum %g", wsObj, indiv)
	}

	// And the full solve can only improve on the warm start.
	plan, err := NewOptimizer(opts).Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective > wsObj+1e-6 {
		t.Errorf("MQO %g worse than its own warm start %g", plan.Objective, wsObj)
	}

	// The strict mode still produces a feasible warm start.
	strict := newBuilder(Options{StoreParallelism: 4}, qs, est)
	strict.enumerateMIRs()
	if err := strict.generateCandidates(); err != nil {
		t.Fatal(err)
	}
	strict.buildModel()
	if ws := strict.warmStart(); ws != nil {
		if err := strict.model.Feasible(ws, 1e-5); err != nil {
			t.Errorf("strict warm start infeasible: %v", err)
		}
	}
}

func TestLocalSearchFindsSharing(t *testing.T) {
	// Heavily shared regime (many 3-relation queries over few inputs):
	// coordinate descent must produce a feasible assignment at least as
	// good as both single-pass greedy variants, and materially better
	// than the Individual baseline — this is the Fig. 9a savings signal.
	env := workload.NewEnv(10, 100)
	qs := env.RandomQueries(20, 3, 1)
	est := env.Estimates()
	opts := Options{StoreParallelism: 4, NoPartitionConsistency: true,
		Solver: ilp.Options{TimeLimit: 3 * time.Second}}
	b := newBuilder(opts, qs, est)
	b.enumerateMIRs()
	if err := b.generateCandidates(); err != nil {
		t.Fatal(err)
	}
	b.buildModel()

	ls := b.warmStartLocalSearch()
	if ls == nil {
		t.Fatal("local search produced nothing")
	}
	if err := b.model.Feasible(ls, 1e-5); err != nil {
		t.Fatalf("local-search solution infeasible: %v", err)
	}
	lsObj := b.model.ObjectiveOf(ls)

	for _, marginal := range []bool{true, false} {
		if g := b.warmStartWith(marginal); g != nil {
			if gObj := b.model.ObjectiveOf(g); lsObj > gObj+1e-6 {
				t.Errorf("local search %g worse than greedy(marginal=%v) %g", lsObj, marginal, gObj)
			}
		}
	}

	indiv, err := NewOptimizer(opts).IndividualCost(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if savings := 1 - lsObj/indiv; savings < 0.15 {
		t.Errorf("local search found only %.1f%% sharing savings over Individual (%g vs %g)",
			savings*100, lsObj, indiv)
	}
}

func TestLocalSearchStrictModeFeasible(t *testing.T) {
	// With partition-consistency rows the search must respect z-commit
	// compatibility; whatever it returns must be feasible.
	env := workload.NewEnv(8, 100)
	qs := env.RandomQueries(10, 3, 2)
	est := env.Estimates()
	b := newBuilder(Options{StoreParallelism: 4}, qs, est)
	b.enumerateMIRs()
	if err := b.generateCandidates(); err != nil {
		t.Fatal(err)
	}
	b.buildModel()
	if ls := b.warmStartLocalSearch(); ls != nil {
		if err := b.model.Feasible(ls, 1e-5); err != nil {
			t.Errorf("strict-mode local search infeasible: %v", err)
		}
	}
}

func TestNoPartitionConsistencyMode(t *testing.T) {
	qs, est := workedExample()
	strict, err := NewOptimizer(Options{StoreParallelism: 4}).Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewOptimizer(Options{StoreParallelism: 4, NoPartitionConsistency: true}).Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping constraints can only lower (or keep) the optimum.
	if loose.Objective > strict.Objective+1e-6 {
		t.Errorf("paper formulation %g worse than strengthened %g",
			loose.Objective, strict.Objective)
	}
	if loose.Stats.Constraints >= strict.Stats.Constraints {
		t.Errorf("z-rows not dropped: %d vs %d constraints",
			loose.Stats.Constraints, strict.Stats.Constraints)
	}
}
