package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clash/internal/ilp"
	"clash/internal/mir"
	"clash/internal/query"
	"clash/internal/stats"
)

// hashSig shortens a long signature string to a 64-bit hex digest for
// use inside cache keys.
func hashSig(s string) string {
	if s == "" {
		return ""
	}
	h := fnv.New64a()
	io.WriteString(h, s)
	return strconv.FormatUint(h.Sum64(), 16)
}

// Reopt carries optimizer state across churn steps so re-optimization
// does work proportional to the delta, not the workload:
//
//   - Memo caches MIR enumeration and containment verdicts (pure
//     functions of query shape).
//   - Cache answers unchanged ILP components from their previous optimal
//     solution without any search.
//   - The incumbent selection of the previous joint solve seeds the new
//     solve: surviving (query, start) groups keep their choice, only
//     added or affected groups are re-placed greedily.
//   - Per-query candidate groups and individual-plan selections are
//     reused verbatim while the estimates snapshot is unchanged.
//
// A Reopt value is owned by one optimization loop (the adaptive
// Controller or a bench harness); it is safe for concurrent use, and
// Advance must be called once per churn step to age out stale entries.
type Reopt struct {
	Memo  *mir.Memo
	Cache *ilp.SolutionCache

	mu        sync.Mutex
	gen       uint64
	keep      uint64
	lastEst   *stats.Estimates
	estVer    uint64
	incumbent map[string]string // query+"\x00"+start -> selected order key
	topCands  map[string]*reoptEntry[map[string][]*DecoratedOrder]
	feedCands map[string]*reoptEntry[map[string][]*DecoratedOrder]
	indiv     map[string]*reoptEntry[indivPlan]
}

type reoptEntry[T any] struct {
	val T
	gen uint64
}

type indivPlan struct {
	sig  string
	keys []string // selected decorated-order keys of the single-query optimum
}

// NewReopt returns fresh cross-churn optimizer state.
func NewReopt() *Reopt {
	return &Reopt{
		Memo:      mir.NewMemo(16),
		Cache:     ilp.NewSolutionCache(16),
		keep:      16,
		incumbent: map[string]string{},
		topCands:  map[string]*reoptEntry[map[string][]*DecoratedOrder]{},
		feedCands: map[string]*reoptEntry[map[string][]*DecoratedOrder]{},
		indiv:     map[string]*reoptEntry[indivPlan]{},
	}
}

// ReoptStats aggregates the effectiveness counters of all cache layers.
type ReoptStats struct {
	MemoHits     uint64
	MemoMisses   uint64
	MemoEntries  int
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int
	Incumbents   int
}

// Stats returns point-in-time counters.
func (r *Reopt) Stats() ReoptStats {
	ms := r.Memo.Stats()
	cs := r.Cache.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReoptStats{
		MemoHits:     ms.Hits,
		MemoMisses:   ms.Misses,
		MemoEntries:  ms.Entries,
		CacheHits:    cs.Hits,
		CacheMisses:  cs.Misses,
		CacheEntries: cs.Entries,
		Incumbents:   len(r.incumbent),
	}
}

// Advance starts a new churn generation: the memo and solution cache age
// one step and local candidate caches untouched for the retention window
// are evicted. Call once per re-optimization step (the Controller does).
func (r *Reopt) Advance() {
	r.Memo.Advance()
	r.Cache.Advance()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	if r.gen < r.keep {
		return
	}
	cutoff := r.gen - r.keep
	evictReopt(r.topCands, cutoff)
	evictReopt(r.feedCands, cutoff)
	evictReopt(r.indiv, cutoff)
	// The incumbent map holds one short entry per live (query, start)
	// group; stale entries for retired queries are never looked up and
	// are rewritten wholesale, so only pathological churn can grow it.
	if len(r.incumbent) > 1<<17 {
		r.incumbent = map[string]string{}
	}
}

func evictReopt[T any](m map[string]*reoptEntry[T], cutoff uint64) {
	for k, e := range m {
		if e.gen <= cutoff {
			delete(m, k)
		}
	}
}

// beginSolve refreshes the estimates version: a new snapshot invalidates
// every cost-bearing cache entry (their keys embed the version).
func (r *Reopt) beginSolve(est *stats.Estimates) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastEst != est {
		r.lastEst = est
		r.estVer++
	}
}

func (r *Reopt) estVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.estVer
}

func (r *Reopt) incumbentFor(group string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.incumbent[group]
	return k, ok
}

// noteIncumbent merges the top-level selection of a finished joint solve
// into the incumbent map (one entry per (query, start) group).
func (r *Reopt) noteIncumbent(plan *Plan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range plan.Selected {
		if d.ForMIR == "" {
			r.incumbent[d.Query.Name+"\x00"+d.Start] = d.Key()
		}
	}
}

func (r *Reopt) topLookup(sig string) (map[string][]*DecoratedOrder, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.topCands[sig]
	if !ok {
		return nil, false
	}
	e.gen = r.gen
	return e.val, true
}

func (r *Reopt) topStore(sig string, group map[string][]*DecoratedOrder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.topCands[sig] = &reoptEntry[map[string][]*DecoratedOrder]{val: group, gen: r.gen}
}

func (r *Reopt) feedLookup(sig string) (map[string][]*DecoratedOrder, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.feedCands[sig]
	if !ok {
		return nil, false
	}
	e.gen = r.gen
	return e.val, true
}

func (r *Reopt) feedStore(sig string, group map[string][]*DecoratedOrder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.feedCands[sig] = &reoptEntry[map[string][]*DecoratedOrder]{val: group, gen: r.gen}
}

func (r *Reopt) indivLookup(name, sig string) ([]string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.indiv[name]
	if !ok || e.val.sig != sig {
		return nil, false
	}
	e.gen = r.gen
	return e.val.keys, true
}

func (r *Reopt) indivStore(name, sig string, keys []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.indiv[name] = &reoptEntry[indivPlan]{val: indivPlan{sig: sig, keys: keys}, gen: r.gen}
}

// rebindGroup clones cached decorated orders onto the current query
// object. Element and step slices are immutable and shared; only the
// query binding differs (a replaced query may be a fresh object with
// identical content).
func rebindGroup(cached map[string][]*DecoratedOrder, q *query.Query) map[string][]*DecoratedOrder {
	out := make(map[string][]*DecoratedOrder, len(cached))
	for start, orders := range cached {
		clones := make([]*DecoratedOrder, len(orders))
		for i, d := range orders {
			cp := *d
			cp.Query = q
			clones[i] = &cp
		}
		out[start] = clones
	}
	return out
}

// optsFingerprint captures every option that flows into candidate
// generation and step costing, so cache keys miss when configuration
// changes.
func (o Options) optsFingerprint() string {
	coef := "-"
	if o.CostCoefficients != nil {
		c := *o.CostCoefficients
		coef = fmt.Sprintf("%g:%g:%g", c.Probe, c.Insert, c.Prune)
	}
	return fmt.Sprintf("p%d|dp%t|uc%t|mc%t|cap%d|npc%t|c%s",
		o.parallelism(), o.DisablePartitioning, o.UniformChi,
		o.MaterializationCost, o.MaxCandidatesPerGroup,
		o.NoPartitionConsistency, coef)
}

// eligSig fingerprints which of a query's own MIR subsets are eligible
// under the current MIREligible policy. Per-query candidates depend on
// exactly this set: MIRs from other queries are either key-identical
// (deduplicated) or fail the containment verdict.
func (b *builder) eligSig(q *query.Query) string {
	var ms []*mir.MIR
	if r := b.opts.Reopt; r != nil && r.Memo != nil {
		ms = r.Memo.Enumerate([]*query.Query{q})
	} else {
		ms = mir.Enumerate([]*query.Query{q})
	}
	var sb strings.Builder
	for _, m := range ms {
		if m.IsBase() {
			continue
		}
		ok := b.opts.mirsEnabled() && (b.opts.MIREligible == nil || b.opts.MIREligible(m.Key()))
		if ok {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// workloadSig fingerprints the full query set's join shapes. Partition
// decorations (and χ's equality-chain knowledge) depend on every
// installed query, so partition-aware cache keys embed it; the
// decomposing NoPartitionConsistency/DisablePartitioning regimes do not
// and stay delta-stable.
func (b *builder) workloadSig() string {
	if b.opts.DisablePartitioning {
		return ""
	}
	fps := make([]string, len(b.queries))
	for i, q := range b.queries {
		fps[i] = mir.Fingerprint(q)
	}
	sort.Strings(fps)
	return strings.Join(fps, ",")
}
