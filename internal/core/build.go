package core

import (
	"fmt"
	"sort"
	"time"

	"clash/internal/cost"
	"clash/internal/ilp"
	"clash/internal/mir"
	"clash/internal/query"
	"clash/internal/stats"
)

// builder constructs and solves the ILP of Algorithm 2.
type builder struct {
	opts    Options
	queries []*query.Query
	rawEst  *stats.Estimates
	est     *cost.Estimator
	mirs    []*mir.MIR
	mirByKy map[string]*mir.MIR

	model *ilp.Model

	orders     []*DecoratedOrder
	xVar       map[string]int // DecoratedOrder.Key() -> ILP var
	yVar       map[string]int // step key -> ILP var
	stepCost   map[string]float64
	orderByKey map[string]*DecoratedOrder

	// cross-churn cache key components (set when opts.Reopt != nil)
	optsFP string
	wsig   string
	estVer uint64

	// top-level candidate groups: query name -> start -> orders
	topGroups map[string]map[string][]*DecoratedOrder
	// feeding groups: MIR key -> start -> orders
	feedGroups map[string]map[string][]*DecoratedOrder

	// partition linking: store MIR key -> attr string -> z var
	zVar map[string]map[string]int
}

func newBuilder(opts Options, queries []*query.Query, est *stats.Estimates) *builder {
	b := &builder{
		opts:       opts,
		queries:    queries,
		rawEst:     est,
		est:        opts.estimator(queries, est),
		model:      ilp.NewModel(),
		xVar:       map[string]int{},
		yVar:       map[string]int{},
		stepCost:   map[string]float64{},
		orderByKey: map[string]*DecoratedOrder{},
		topGroups:  map[string]map[string][]*DecoratedOrder{},
		feedGroups: map[string]map[string][]*DecoratedOrder{},
		zVar:       map[string]map[string]int{},
	}
	if r := opts.Reopt; r != nil {
		r.beginSolve(est)
		b.optsFP = opts.optsFingerprint()
		b.wsig = hashSig(b.workloadSig())
		b.estVer = r.estVersion()
	}
	return b
}

// groupSig keys one query's cached candidate group: name (part of the
// decorated-order identity), join shape, MIR eligibility, estimates
// version, options, and — in partition-aware modes — the workload shape.
func (b *builder) groupSig(q *query.Query) string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%s",
		q.Name, mir.Fingerprint(q), b.eligSig(q), b.estVer, b.optsFP, b.wsig)
}

func (b *builder) run() (*Plan, error) {
	t0 := time.Now()
	b.enumerateMIRs()
	if err := b.generateCandidates(); err != nil {
		return nil, err
	}
	b.buildModel()
	build := time.Since(t0)

	t1 := time.Now()
	solverOpts := b.opts.Solver
	if r := b.opts.Reopt; r != nil && solverOpts.Cache == nil {
		solverOpts.Cache = r.Cache
	}
	if ws := b.warmStart(); ws != nil {
		solverOpts.WarmStart = ws
	}
	sol := b.model.Solve(&solverOpts)
	solve := time.Since(t1)

	if sol.Status == ilp.Infeasible && b.opts.MaxCandidatesPerGroup > 0 {
		// Aggressive capping can drop the only partition-consistent
		// combinations; retry with the full candidate set.
		full := b.opts
		full.MaxCandidatesPerGroup = 0
		return newBuilder(full, b.queries, b.rawEst).run()
	}
	if sol.Status == ilp.Infeasible || sol.Status == ilp.Unbounded {
		return nil, fmt.Errorf("core: ILP %s (%d queries, %d candidates)\n%s", sol.Status, len(b.queries), len(b.orders), b.model)
	}
	if sol.Values == nil {
		return nil, fmt.Errorf("core: ILP hit limits with no incumbent (nodes=%d)", sol.Nodes)
	}

	plan := b.extract(sol)
	plan.Stats = ProblemStats{
		Queries:     len(b.queries),
		MIRs:        len(b.mirs),
		ProbeOrders: len(b.orders),
		Variables:   b.model.NumVars(),
		Constraints: b.model.NumCons(),
		SolveTime:   solve,
		BuildTime:   build,
		Nodes:       sol.Nodes,
		Status:      sol.Status,
		CacheHits:   sol.CacheHits,
		CacheMisses: sol.CacheMisses,
	}
	if r := b.opts.Reopt; r != nil && !b.opts.reoptChild {
		r.noteIncumbent(plan)
	}
	return plan, nil
}

func (b *builder) enumerateMIRs() {
	var all []*mir.MIR
	if r := b.opts.Reopt; r != nil && r.Memo != nil {
		all = r.Memo.Enumerate(b.queries)
	} else {
		all = mir.Enumerate(b.queries)
	}
	for _, m := range all {
		if !m.IsBase() {
			if !b.opts.mirsEnabled() {
				continue
			}
			if b.opts.MIREligible != nil && !b.opts.MIREligible(m.Key()) {
				continue
			}
		}
		b.mirs = append(b.mirs, m)
	}
	b.mirByKy = map[string]*mir.MIR{}
	for _, m := range b.mirs {
		b.mirByKy[m.Key()] = m
	}
}

// candidates enumerates probe orders for q, through the cross-churn memo
// when one is installed.
func (b *builder) candidates(q *query.Query) map[string][]*mir.ProbeOrder {
	if r := b.opts.Reopt; r != nil && r.Memo != nil {
		return r.Memo.Candidates(q, b.mirs)
	}
	return mir.Candidates(q, b.mirs)
}

// generateCandidates produces decorated probe orders for every query and,
// transitively, feeding orders for every MIR referenced by a candidate.
// With Options.Reopt set, whole decorated groups are reused across churn
// steps when the query's shape, its MIR eligibility, the estimates
// snapshot, and the options are unchanged.
func (b *builder) generateCandidates() error {
	r := b.opts.Reopt
	neededMIRs := map[string]*mir.MIR{}
	for _, q := range b.queries {
		var group map[string][]*DecoratedOrder
		sig := ""
		if r != nil {
			sig = b.groupSig(q)
			if cached, ok := r.topLookup(sig); ok {
				group = rebindGroup(cached, q)
			}
		}
		if group == nil {
			cands := b.candidates(q)
			group = map[string][]*DecoratedOrder{}
			for start, orders := range cands {
				var dec []*DecoratedOrder
				for _, po := range orders {
					dec = append(dec, b.decorate(q, "", start, po)...)
				}
				group[start] = b.capGroup(dec)
			}
			if r != nil {
				r.topStore(sig, group)
			}
		}
		for start, dec := range group {
			if len(dec) == 0 {
				return fmt.Errorf("core: query %s has no probe order from %s (disconnected query graph?)", q.Name, start)
			}
			for _, d := range dec {
				b.noteMIRUse(d, neededMIRs)
			}
		}
		b.topGroups[q.Name] = group
	}

	// Feeding orders, processed until closure (feeds may use smaller MIRs).
	pending := mirKeysSorted(neededMIRs)
	done := map[string]bool{}
	for len(pending) > 0 {
		key := pending[0]
		pending = pending[1:]
		if done[key] {
			continue
		}
		done[key] = true
		m := neededMIRs[key]
		sub := m.Subquery()
		var group map[string][]*DecoratedOrder
		sig := ""
		if r != nil {
			sig = "feed|" + key + "|" + b.groupSig(sub)
			if cached, ok := r.feedLookup(sig); ok {
				group = rebindGroup(cached, sub)
				for _, dec := range group {
					for _, d := range dec {
						d.Fed = m
					}
				}
			}
		}
		if group == nil {
			cands := b.candidates(sub)
			group = map[string][]*DecoratedOrder{}
			for start, orders := range cands {
				var dec []*DecoratedOrder
				for _, po := range orders {
					for _, d := range b.decorate(sub, key, start, po) {
						d.Fed = m
						dec = append(dec, d)
					}
				}
				group[start] = b.capGroup(dec)
			}
			if r != nil {
				r.feedStore(sig, group)
			}
		}
		newNeeds := map[string]*mir.MIR{}
		for _, dec := range group {
			for _, d := range dec {
				b.noteMIRUse(d, newNeeds)
			}
		}
		b.feedGroups[key] = group
		for k, mm := range newNeeds {
			if !done[k] {
				if _, known := neededMIRs[k]; !known {
					neededMIRs[k] = mm
				}
				pending = append(pending, k)
			}
		}
	}
	return nil
}

func mirKeysSorted(m map[string]*mir.MIR) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (b *builder) noteMIRUse(d *DecoratedOrder, out map[string]*mir.MIR) {
	for i, e := range d.Elems {
		if i > 0 && !e.MIR.IsBase() {
			out[e.MIR.Key()] = e.MIR
		}
	}
}

// capGroup keeps at most MaxCandidatesPerGroup cheapest candidates.
func (b *builder) capGroup(dec []*DecoratedOrder) []*DecoratedOrder {
	max := b.opts.MaxCandidatesPerGroup
	if max <= 0 || len(dec) <= max {
		return dec
	}
	sort.Slice(dec, func(i, j int) bool { return dec[i].Cost < dec[j].Cost })
	return dec[:max]
}

// decorate applies partitioning to a probe order (Alg. 2, line 3),
// producing one DecoratedOrder per combination of partition candidates
// of the probed stores, and computes step costs (Eq. 1).
func (b *builder) decorate(q *query.Query, forMIR, start string, po *mir.ProbeOrder) []*DecoratedOrder {
	n := po.Len()
	choices := make([][]query.Attr, n)
	choices[0] = []query.Attr{{}}
	for i := 1; i < n; i++ {
		if b.opts.DisablePartitioning {
			choices[i] = []query.Attr{{}}
			continue
		}
		cands := mir.PartitionCandidates(po.Elems[i], b.queries)
		if len(cands) == 0 {
			cands = []query.Attr{{}}
		}
		choices[i] = cands
	}

	var out []*DecoratedOrder
	elems := make([]Element, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			d := &DecoratedOrder{
				Query:  q,
				ForMIR: forMIR,
				Start:  start,
				Elems:  append([]Element(nil), elems...),
			}
			b.computeSteps(d)
			out = append(out, d)
			return
		}
		for _, attr := range choices[i] {
			elems[i] = Element{MIR: po.Elems[i], Partition: attr}
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// computeSteps derives the physical steps and their Eq. 1 costs for a
// decorated order. Step keys are canonical so equal steps across queries
// share one ILP variable.
func (b *builder) computeSteps(d *DecoratedOrder) {
	par := b.opts.parallelism()
	prefix := make([]cost.Target, 0, len(d.Elems))
	var prefixRels []string
	for i, e := range d.Elems {
		t := cost.Target{Rels: e.MIR.RelSet(), Partition: e.Partition, Parallelism: par}
		if b.opts.UniformChi {
			t.Parallelism = 1
			t.Partition = query.Attr{}
		}
		if i > 0 {
			// The prefix identity includes the starting relation: the
			// partial result reached from arriving-R tuples ("R latest",
			// the paper's subquery q_R) is a different tuple stream than
			// the same relation set reached from arriving-S tuples, so
			// equal relation sets with different starts must not share a
			// step variable.
			prefixKey := d.Start + ":" + mir.New(prefixRels, d.Query.Preds).Key()
			target := t
			c := b.est.StepCost(prefix, target, d.Query.Preds)
			key := prefixKey + "->" + e.MIR.Key() + "[" + e.Partition.String() + "]"
			d.Steps = append(d.Steps, Step{Key: key, PrefixKey: prefixKey, Target: e, Cost: c})
			d.Cost += c
		}
		prefix = append(prefix, t)
		prefixRels = append(prefixRels, e.MIR.Rels...)
	}
	if b.opts.MaterializationCost && d.ForMIR != "" {
		// Inserting the feeding results into the MIR store: the full
		// subquery result per time unit, divided by the number of
		// starting relations contributing (each feeding order carries
		// its 1/|elems| share), partition always known.
		m := b.mirByKy[d.ForMIR]
		if m != nil {
			card := b.est.JoinCardinality(m.RelSet(), d.Query.Preds)
			c := card / float64(len(d.Elems)) * b.est.MaterializationUnit()
			key := d.Start + ":" + mir.New(prefixRels, d.Query.Preds).Key() + "=>" + d.ForMIR
			d.Steps = append(d.Steps, Step{Key: key, PrefixKey: d.ForMIR, Cost: c})
			d.Cost += c
		}
	}
}

// buildModel emits the ILP (Algorithm 2).
func (b *builder) buildModel() {
	// Variables: x per decorated order, y per distinct step, z per
	// (store, partition attribute) pair.
	addOrder := func(d *DecoratedOrder) {
		key := d.Key()
		if _, dup := b.xVar[key]; dup {
			return
		}
		b.orders = append(b.orders, d)
		b.orderByKey[key] = d
		b.xVar[key] = b.model.AddBinary("x:"+key, 0)
		for _, s := range d.Steps {
			if _, ok := b.yVar[s.Key]; !ok {
				b.yVar[s.Key] = b.model.AddBinary("y:"+s.Key, s.Cost)
				b.stepCost[s.Key] = s.Cost
			}
		}
		if b.opts.NoPartitionConsistency {
			return
		}
		for i, e := range d.Elems {
			if i == 0 || e.Partition == (query.Attr{}) {
				continue
			}
			byAttr := b.zVar[e.MIR.Key()]
			if byAttr == nil {
				byAttr = map[string]int{}
				b.zVar[e.MIR.Key()] = byAttr
			}
			if _, ok := byAttr[e.Partition.String()]; !ok {
				byAttr[e.Partition.String()] = b.model.AddBinary(
					"z:"+e.MIR.Key()+"["+e.Partition.String()+"]", 0)
			}
		}
	}
	for _, q := range b.queries {
		for _, s := range sortedKeys(b.topGroups[q.Name]) {
			for _, d := range b.topGroups[q.Name][s] {
				addOrder(d)
			}
		}
	}
	for _, key := range sortedKeys(b.feedGroups) {
		group := b.feedGroups[key]
		for _, s := range sortedKeys(group) {
			for _, d := range group[s] {
				addOrder(d)
			}
		}
	}

	// (1) Choice rows: exactly one decorated order per (query, start).
	for _, q := range b.queries {
		starts := make([]string, 0, len(b.topGroups[q.Name]))
		for s := range b.topGroups[q.Name] {
			starts = append(starts, s)
		}
		sort.Strings(starts)
		for _, s := range starts {
			var terms []ilp.Term
			for _, d := range b.topGroups[q.Name][s] {
				terms = append(terms, ilp.T(b.xVar[d.Key()], 1))
			}
			b.model.AddConstraint(fmt.Sprintf("choice:%s/%s", q.Name, s), ilp.EQ, 1, terms...)
		}
	}

	// (2)-(4) per order: cost row, feeding rows, partition links.
	for _, d := range b.orders {
		x := b.xVar[d.Key()]
		// Cost row, normalized by PCost for numerical conditioning:
		// -x + Σ (StepCost/PCost) y ≥ 0 forces every step of a chosen
		// order (equivalent to the paper's Eq. 3 pattern).
		if d.Cost > 0 {
			terms := []ilp.Term{ilp.T(x, -1)}
			for _, s := range d.Steps {
				if s.Cost > 0 {
					terms = append(terms, ilp.T(b.yVar[s.Key], s.Cost/d.Cost))
				}
			}
			b.model.AddConstraint("cost:"+d.Key(), ilp.GE, 0, terms...)
		}
		// Feeding rows: for each MIR element, each of the MIR's input
		// relations must run one feeding probe order. (The paper's
		// -k_j coefficient reads as a typo: with k_j>1 it would force
		// multiple redundant feeds; one per input relation suffices and
		// matches the surrounding prose. See DESIGN.md.)
		for i, e := range d.Elems {
			if i == 0 || e.MIR.IsBase() {
				continue
			}
			group := b.feedGroups[e.MIR.Key()]
			rels := append([]string(nil), e.MIR.Rels...)
			sort.Strings(rels)
			for _, r := range rels {
				feeds := group[r]
				terms := []ilp.Term{ilp.T(x, -1)}
				for _, f := range feeds {
					terms = append(terms, ilp.T(b.xVar[f.Key()], 1))
				}
				b.model.AddConstraint(
					fmt.Sprintf("feed:%s/%s<-%s", e.MIR.Key(), r, d.Key()),
					ilp.GE, 0, terms...)
			}
		}
		// Partition links: choosing the order commits each decorated
		// store to that partitioning.
		if !b.opts.NoPartitionConsistency {
			for i, e := range d.Elems {
				if i == 0 || e.Partition == (query.Attr{}) {
					continue
				}
				z := b.zVar[e.MIR.Key()][e.Partition.String()]
				b.model.AddConstraint(
					fmt.Sprintf("link:%s[%s]", e.MIR.Key(), e.Partition),
					ilp.GE, 0, ilp.T(z, 1), ilp.T(x, -1))
			}
		}
	}

	// (5) One partitioning per store.
	storeKeys := make([]string, 0, len(b.zVar))
	for k := range b.zVar {
		storeKeys = append(storeKeys, k)
	}
	sort.Strings(storeKeys)
	for _, k := range storeKeys {
		attrs := make([]string, 0, len(b.zVar[k]))
		for a := range b.zVar[k] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		var terms []ilp.Term
		for _, a := range attrs {
			terms = append(terms, ilp.T(b.zVar[k][a], 1))
		}
		b.model.AddConstraint("onepart:"+k, ilp.LE, 1, terms...)
	}
}

// extract converts the ILP solution into a Plan: the chosen top-level
// orders plus the feeding orders actually required, with consistent
// store partitionings.
func (b *builder) extract(sol *ilp.Solution) *Plan {
	plan := &Plan{
		Queries:    b.queries,
		Partitions: map[string]query.Attr{},
		Objective:  sol.Objective,
		opts:       b.opts,
	}

	chosen := func(d *DecoratedOrder) bool { return sol.IsOne(b.xVar[d.Key()]) }

	// Top-level selections (exactly one per group by the choice rows).
	var queue []*DecoratedOrder
	for _, q := range b.queries {
		starts := make([]string, 0, len(b.topGroups[q.Name]))
		for s := range b.topGroups[q.Name] {
			starts = append(starts, s)
		}
		sort.Strings(starts)
		for _, s := range starts {
			for _, d := range b.topGroups[q.Name][s] {
				if chosen(d) {
					plan.Selected = append(plan.Selected, d)
					queue = append(queue, d)
					break
				}
			}
		}
	}

	// Pull in the required feeding orders transitively. The solver may
	// have set extra x' variables whose steps were already paid; we keep
	// only one feed per (MIR, start), preferring the cheapest chosen one.
	feedDone := map[string]bool{}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for i, e := range d.Elems {
			if i == 0 || e.MIR.IsBase() || feedDone[e.MIR.Key()] {
				continue
			}
			feedDone[e.MIR.Key()] = true
			group := b.feedGroups[e.MIR.Key()]
			rels := append([]string(nil), e.MIR.Rels...)
			sort.Strings(rels)
			for _, r := range rels {
				var pick *DecoratedOrder
				for _, f := range group[r] {
					if chosen(f) && (pick == nil || f.Cost < pick.Cost) {
						pick = f
					}
				}
				if pick == nil && len(group[r]) > 0 {
					// Defensive: the feeding constraints guarantee one;
					// fall back to the cheapest candidate.
					pick = group[r][0]
					for _, f := range group[r] {
						if f.Cost < pick.Cost {
							pick = f
						}
					}
				}
				if pick != nil {
					plan.Selected = append(plan.Selected, pick)
					queue = append(queue, pick)
				}
			}
		}
	}

	// Store partitionings from the selected orders' decorations (the z
	// constraints guarantee consistency).
	for _, d := range plan.Selected {
		for i, e := range d.Elems {
			if i == 0 {
				continue
			}
			if e.Partition != (query.Attr{}) {
				plan.Partitions[e.MIR.Key()] = e.Partition
			} else if _, ok := plan.Partitions[e.MIR.Key()]; !ok {
				plan.Partitions[e.MIR.Key()] = query.Attr{}
			}
		}
	}
	plan.HotKeys = b.hotKeys(plan.Partitions)
	return plan
}

// hotKeys resolves, per partitioned store, the heavy hitters of the
// partitioning attribute whose estimated stream share reaches a full
// mean partition (share >= 1/parallelism): hashing such a key pins at
// least an average task's worth of load onto one partition, so the
// compiled topology splits it over two tasks instead. Hashes are sorted
// so equal estimates produce byte-equal configs.
func (b *builder) hotKeys(partitions map[string]query.Attr) map[string][]uint64 {
	par := b.opts.parallelism()
	if par < 2 || b.opts.UniformChi {
		return nil
	}
	var out map[string][]uint64
	threshold := 1.0 / float64(par)
	for key, attr := range partitions {
		if attr == (query.Attr{}) {
			continue
		}
		d := b.rawEst.Degree(attr.Qualified())
		if d == nil {
			continue
		}
		var hot []uint64
		for i := range d.Top {
			if d.KeyShare(i) >= threshold {
				hot = append(hot, d.Top[i].Hash)
			}
		}
		if len(hot) == 0 {
			continue
		}
		sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
		if out == nil {
			out = map[string][]uint64{}
		}
		out[key] = hot
	}
	return out
}
