package core

import (
	"math"
	"strings"
	"testing"

	"clash/internal/query"
	"clash/internal/stats"
)

// workedExample sets up the paper's Sec. V-2 multi-query example:
// q1 = R(a),S(a,b),T(b) and q2 = S(b),T(b,c),U(c); every relation streams
// 100 tuples per time unit; S⋈T yields 150 intermediate results, the
// other joins yield 100 (selectivities 0.015 and 0.01).
func workedExample() ([]*query.Query, *stats.Estimates) {
	q1 := query.MustParse("q1: R(a) S(a,b) T(b)")
	q2 := query.MustParse("q2: S(b) T(b,c) U(c)")
	est := stats.NewEstimates(0.01)
	for _, r := range []string{"R", "S", "T", "U"} {
		est.SetRate(r, 100)
	}
	est.SetSelectivity(query.Predicate{
		Left:  query.Attr{Rel: "S", Name: "b"},
		Right: query.Attr{Rel: "T", Name: "b"},
	}, 0.015)
	return []*query.Query{q1, q2}, est
}

// exampleOptions matches the example's simplifications: no materialized
// subqueries, no partitioning (χ ignored).
func exampleOptions() Options {
	return Options{DisableMIRs: true, DisablePartitioning: true, StoreParallelism: 1}
}

func TestPaperWorkedExampleIndividual(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(exampleOptions())
	total, err := o.IndividualCost(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: 475 tuples per query, 950 in total.
	if math.Abs(total-950) > 1e-6 {
		t.Errorf("individual cost = %g, want 950", total)
	}
	plans, err := o.OptimizeIndividually(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if math.Abs(p.Objective-475) > 1e-6 {
			t.Errorf("plan %d objective = %g, want 475", i, p.Objective)
		}
	}
	// Individually, q1 uses ⟨S,R,T⟩ (cost 150), not ⟨S,T,R⟩ (175).
	if got := plans[0].SelectedFor("q1", "S").String(); got != "⟨S,R,T⟩" {
		t.Errorf("individual q1/S = %s, want ⟨S,R,T⟩", got)
	}
}

func TestPaperWorkedExampleMQO(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(exampleOptions())
	plan, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	// Shared optimum: forced steps R→S(100), RS→T(50), S→T(100),
	// T→S(100), TS→R(75), ST→U(75), U→T(100), UT→S(50) plus the two
	// locally suboptimal completions ST→R(75) and TS→U(75) = 800.
	if math.Abs(plan.Objective-800) > 1e-6 {
		t.Errorf("MQO objective = %g, want 800\n%s", plan.Objective, plan)
	}
	// The paper's key observation: the locally suboptimal ⟨S,T,R⟩ is
	// chosen for q1 because q2 pays for S→T anyway; symmetrically
	// ⟨T,S,U⟩ for q2.
	if got := plan.SelectedFor("q1", "S").String(); got != "⟨S,T,R⟩" {
		t.Errorf("MQO q1/S = %s, want ⟨S,T,R⟩", got)
	}
	if got := plan.SelectedFor("q2", "T").String(); got != "⟨T,S,U⟩" {
		t.Errorf("MQO q2/T = %s, want ⟨T,S,U⟩", got)
	}
	// Savings versus 950 individual.
	if plan.Objective >= 950 {
		t.Error("MQO did not beat individual optimization")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(exampleOptions())
	a, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.String() != b.String() {
		t.Error("optimization not deterministic")
	}
}

func TestOptimizeWithPartitioning(t *testing.T) {
	qs, est := workedExample()
	// Parallelism 5: broadcasts cost ×5; partitioning should avoid most.
	o := NewOptimizer(Options{StoreParallelism: 5})
	plan, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	// Partition consistency: every store got at most one attribute, and
	// every selected order's decoration agrees with it.
	for _, d := range plan.Selected {
		for i, e := range d.Elems {
			if i == 0 {
				continue
			}
			want := plan.Partitions[e.MIR.Key()]
			if e.Partition != want {
				t.Errorf("order %s assumes %s partitioned by %v, plan says %v",
					d, e.MIR.Label(), e.Partition, want)
			}
		}
	}
	// With partitioning available, the optimum must not exceed the
	// all-broadcast cost of the same selection.
	oNoPart := NewOptimizer(Options{StoreParallelism: 5, DisablePartitioning: true})
	noPart, err := oNoPart.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective > noPart.Objective+1e-9 {
		t.Errorf("partitioned optimum %g worse than broadcast-only %g", plan.Objective, noPart.Objective)
	}
}

func TestUniformChiAblation(t *testing.T) {
	qs, est := workedExample()
	a := NewOptimizer(Options{StoreParallelism: 5, UniformChi: true})
	b := NewOptimizer(Options{StoreParallelism: 1})
	pa, err := a.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	// χ≡1 with any parallelism equals parallelism-1 costing.
	if math.Abs(pa.Objective-pb.Objective) > 1e-6 {
		t.Errorf("UniformChi %g != parallelism-1 %g", pa.Objective, pb.Objective)
	}
}

func TestMIRSelectionWhenIntermediateCheap(t *testing.T) {
	// Make R⋈S expensive so probing via a materialized ST store pays
	// off for R-tuples: ⟨R,ST⟩ costs |R| while ⟨R,S,T⟩ adds |R⋈S|/2.
	q1 := query.MustParse("q1: R(a) S(a,b) T(b)")
	est := stats.NewEstimates(0.01)
	est.SetRate("R", 100)
	est.SetRate("S", 100)
	est.SetRate("T", 100)
	est.SetSelectivity(query.Predicate{
		Left:  query.Attr{Rel: "R", Name: "a"},
		Right: query.Attr{Rel: "S", Name: "a"},
	}, 0.2) // |R⋈S| = 2000 per unit: terrible prefix
	o := NewOptimizer(Options{StoreParallelism: 1, DisablePartitioning: true})
	plan, err := o.Optimize([]*query.Query{q1}, est)
	if err != nil {
		t.Fatal(err)
	}
	rOrder := plan.SelectedFor("q1", "R")
	if rOrder == nil || !strings.Contains(rOrder.String(), "ST") {
		t.Errorf("q1/R = %v, want probe via materialized ST", rOrder)
	}
	// The plan must include feeding orders for the ST store.
	if feeds := plan.FeedsFor(rOrder.Elems[1].MIR.Key()); len(feeds) != 2 {
		t.Errorf("ST feeds = %d, want 2 (one per input relation)", len(feeds))
	}
}

func TestDisableMIRsExcludesMaterialization(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(Options{DisableMIRs: true, DisablePartitioning: true})
	plan, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Selected {
		if d.ForMIR != "" {
			t.Errorf("feeding order %s present with MIRs disabled", d)
		}
		for _, e := range d.Elems {
			if !e.MIR.IsBase() {
				t.Errorf("order %s uses composite store with MIRs disabled", d)
			}
		}
	}
}

func TestMaterializationCostDiscouragesMIRs(t *testing.T) {
	q1 := query.MustParse("q1: R(a) S(a,b) T(b)")
	est := stats.NewEstimates(0.01)
	est.SetRate("R", 100)
	est.SetRate("S", 100)
	est.SetRate("T", 100)
	base := Options{StoreParallelism: 1, DisablePartitioning: true}
	withCost := base
	withCost.MaterializationCost = true
	p1, err := NewOptimizer(base).Optimize([]*query.Query{q1}, est)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewOptimizer(withCost).Optimize([]*query.Query{q1}, est)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Objective < p1.Objective-1e-9 {
		t.Errorf("materialization cost lowered the optimum: %g < %g", p2.Objective, p1.Objective)
	}
}

func TestOptimizeValidation(t *testing.T) {
	est := stats.NewEstimates(0.01)
	o := NewOptimizer(Options{})
	// Unnamed query.
	q := query.MustParse("R(a) S(a)")
	if _, err := o.Optimize([]*query.Query{q}, est); err == nil {
		t.Error("unnamed query should fail")
	}
	// Duplicate names.
	a := query.MustParse("q: R(a) S(a)")
	b := query.MustParse("q: S(b) T(b)")
	if _, err := o.Optimize([]*query.Query{a, b}, est); err == nil {
		t.Error("duplicate names should fail")
	}
	// Empty set is a valid no-op.
	p, err := o.Optimize(nil, est)
	if err != nil || len(p.Selected) != 0 {
		t.Errorf("empty optimize: %v %v", p, err)
	}
}

func TestProblemStatsPopulated(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(Options{StoreParallelism: 2})
	plan, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Stats
	if s.Queries != 2 || s.Variables == 0 || s.Constraints == 0 || s.ProbeOrders == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.MIRs == 0 {
		t.Error("MIR count missing")
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	qs, est := workedExample()
	capped := NewOptimizer(Options{StoreParallelism: 2, DisablePartitioning: true, MaxCandidatesPerGroup: 1})
	plan, err := capped.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewOptimizer(Options{StoreParallelism: 2, DisablePartitioning: true}).Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.ProbeOrders >= full.Stats.ProbeOrders {
		t.Errorf("cap did not reduce candidates: %d vs %d",
			plan.Stats.ProbeOrders, full.Stats.ProbeOrders)
	}
	// Capped solutions are feasible, possibly suboptimal.
	if plan.Objective < full.Objective-1e-9 {
		t.Error("capped search beat the full search")
	}
}

func TestUsedStores(t *testing.T) {
	qs, est := workedExample()
	o := NewOptimizer(exampleOptions())
	plan, err := o.Optimize(qs, est)
	if err != nil {
		t.Fatal(err)
	}
	used := plan.UsedStores()
	if len(used) == 0 {
		t.Fatal("no stores used")
	}
	// All four base stores are probed in the worked example.
	if len(used) != 4 {
		t.Errorf("used stores = %v, want the 4 base stores", used)
	}
}
