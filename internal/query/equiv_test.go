package query

import "testing"

func TestAttrClassesTransitive(t *testing.T) {
	// R.a = S.a, S.a = T.x  =>  {R.a, S.a, T.x} one class.
	preds := []Predicate{
		{Attr{"R", "a"}, Attr{"S", "a"}},
		{Attr{"S", "a"}, Attr{"T", "x"}},
		{Attr{"S", "b"}, Attr{"T", "b"}},
	}
	cls := AttrClasses(preds)
	if !SameClass(cls, Attr{"R", "a"}, Attr{"T", "x"}) {
		t.Error("transitive equality not detected")
	}
	if !SameClass(cls, Attr{"S", "b"}, Attr{"T", "b"}) {
		t.Error("direct equality not detected")
	}
	if SameClass(cls, Attr{"R", "a"}, Attr{"S", "b"}) {
		t.Error("distinct classes merged")
	}
}

func TestSameClassUnknownAttrs(t *testing.T) {
	cls := AttrClasses(nil)
	a := Attr{"R", "a"}
	if !SameClass(cls, a, a) {
		t.Error("identical unknown attrs should compare equal")
	}
	if SameClass(cls, a, Attr{"S", "a"}) {
		t.Error("distinct unknown attrs should differ")
	}
}

func TestAttrClassesDeterministicCanon(t *testing.T) {
	p1 := []Predicate{{Attr{"R", "a"}, Attr{"S", "a"}}, {Attr{"S", "a"}, Attr{"T", "x"}}}
	p2 := []Predicate{{Attr{"S", "a"}, Attr{"T", "x"}}, {Attr{"R", "a"}, Attr{"S", "a"}}}
	c1, c2 := AttrClasses(p1), AttrClasses(p2)
	for a, r := range c1 {
		if c2[a] != r {
			t.Errorf("canonical representative for %v differs by insertion order: %v vs %v", a, r, c2[a])
		}
	}
}
