package query

// Native fuzz target for the query parser — the one component that
// reads arbitrary user text (workload files, the clash-run REPL, every
// cmd/ binary's -workload flag). Properties:
//
//  1. Parse and ParseWorkload never panic, whatever the input.
//  2. A successful parse yields a well-formed query (at least one
//     relation) with a deterministic re-parse — parsing the same text
//     twice gives the same query signature — and the downstream
//     pipeline stages (catalog construction, validation) reject bad
//     queries with errors, never panics.
//
// The checked-in corpus (testdata/fuzz/FuzzQueryParse) seeds the
// paper's notation, explicit predicates, comments, and malformed edge
// cases; CI runs a 30s fuzz smoke on every push.

import "testing"

func FuzzQueryParse(f *testing.F) {
	f.Add("q1: R(a) S(a,b) T(b)")
	f.Add("q2: R(x) S(y) | R.x=S.y")
	f.Add("R(a) S(a)\n# comment\nq: S(b) T(b,c) U(c)")
	f.Add("q: R(a,b,c) S(c,d) T(d,e) U(e,f) V(f,a)")
	f.Add("q1: R() S()")
	f.Add("R(a")
	f.Add(": (")
	f.Add("q: R(a) | R.a=")
	f.Add("q: R(a) trailing")
	f.Add("\x00\xff(\x01)")

	f.Fuzz(func(t *testing.T, text string) {
		q, rels, err := Parse(text)
		if err != nil {
			return // malformed input must fail cleanly, which it did
		}
		if q == nil || len(q.Relations) == 0 || len(rels) == 0 {
			t.Fatalf("successful parse returned an empty query for %q", text)
		}
		// Catalog construction and validation are the next pipeline
		// stages for any parsed query; both may reject (explicit
		// predicates can reference undeclared attributes — validation is
		// deliberately a separate stage) but neither may panic.
		if cat, err := NewCatalog(rels...); err == nil {
			_ = cat.Validate(q)
		}
		// Deterministic re-parse: same text, same query.
		q2, _, err2 := Parse(text)
		if err2 != nil {
			t.Fatalf("re-parse of %q failed: %v", text, err2)
		}
		if q.String() != q2.String() {
			t.Fatalf("re-parse changed the query: %q vs %q", q.String(), q2.String())
		}

		// ParseWorkload over the same text must never panic either (it
		// may fail: merged declarations impose extra constraints).
		_, _, _ = ParseWorkload(text)
	})
}
