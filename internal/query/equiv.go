package query

// AttrClasses computes the equivalence classes of qualified attributes
// induced by a set of equi-join predicates (transitive closure of
// equality). Attributes in the same class carry equal values in any join
// result, so a tuple that contains one attribute of a class can be routed
// by any other attribute of the same class. Returns a map from attribute
// to a canonical class representative.
func AttrClasses(preds []Predicate) map[Attr]Attr {
	parent := map[Attr]Attr{}
	var find func(a Attr) Attr
	find = func(a Attr) Attr {
		p, ok := parent[a]
		if !ok {
			parent[a] = a
			return a
		}
		if p == a {
			return a
		}
		root := find(p)
		parent[a] = root
		return root
	}
	union := func(a, b Attr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Deterministic canonical pick: smaller string wins.
			if rb.String() < ra.String() {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, p := range preds {
		union(p.Left, p.Right)
	}
	out := make(map[Attr]Attr, len(parent))
	for a := range parent {
		out[a] = find(a)
	}
	return out
}

// SameClass reports whether two attributes are value-equivalent under the
// classes computed by AttrClasses.
func SameClass(classes map[Attr]Attr, a, b Attr) bool {
	ca, oka := classes[a]
	cb, okb := classes[b]
	if !oka || !okb {
		return a == b
	}
	return ca == cb
}
