package query

import (
	"fmt"
	"strings"
)

// Parse reads a query in the paper's notation:
//
//	q1: R(a) S(a,b) T(b)
//
// The leading "name:" is optional. Relations are separated by spaces or
// commas. An equi-join predicate is implied between every pair of
// relations that mention the same attribute name (natural-join style, as
// in the paper's examples). Explicit predicates over differently named
// attributes can be appended after a '|':
//
//	q2: R(x) S(y) | R.x=S.y
//
// Parse returns the query and the relations it declares (with the
// attribute lists seen in the text), so callers can build a catalog.
func Parse(text string) (*Query, []*Relation, error) {
	name := ""
	body := strings.TrimSpace(text)
	if i := strings.Index(body, ":"); i >= 0 && !strings.Contains(body[:i], "(") {
		name = strings.TrimSpace(body[:i])
		body = strings.TrimSpace(body[i+1:])
	}
	explicit := ""
	if i := strings.Index(body, "|"); i >= 0 {
		explicit = strings.TrimSpace(body[i+1:])
		body = strings.TrimSpace(body[:i])
	}
	rels, err := parseRelations(body)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %q: %w", text, err)
	}
	if len(rels) == 0 {
		return nil, nil, fmt.Errorf("parse %q: no relations", text)
	}

	var preds []Predicate
	// Implied predicates: same attribute name across relations.
	byAttr := map[string][]string{}
	for _, r := range rels {
		for _, a := range r.Attrs {
			byAttr[a] = append(byAttr[a], r.Name)
		}
	}
	for attr, owners := range byAttr {
		for i := 0; i < len(owners); i++ {
			for j := i + 1; j < len(owners); j++ {
				preds = append(preds, Predicate{
					Left:  Attr{Rel: owners[i], Name: attr},
					Right: Attr{Rel: owners[j], Name: attr},
				})
			}
		}
	}
	// Explicit predicates.
	if explicit != "" {
		for _, part := range strings.Split(explicit, "&") {
			p, err := parsePredicate(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, fmt.Errorf("parse %q: %w", text, err)
			}
			preds = append(preds, p)
		}
	}

	names := make([]string, len(rels))
	for i, r := range rels {
		names[i] = r.Name
	}
	q, err := NewQuery(name, names, preds)
	if err != nil {
		return nil, nil, err
	}
	return q, rels, nil
}

// MustParse is Parse for tests and static initialization.
func MustParse(text string) *Query {
	q, _, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseWorkload parses one query per non-empty line and merges the
// declared relations into a catalog. Relations appearing in several
// queries must agree on their attribute lists' union (attributes are
// merged). Lines starting with '#' are comments.
func ParseWorkload(text string) ([]*Query, *Catalog, error) {
	var queries []*Query
	merged := map[string]*Relation{}
	var order []string
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, rels, err := Parse(line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if q.Name == "" {
			q.Name = fmt.Sprintf("q%d", len(queries)+1)
		}
		queries = append(queries, q)
		for _, r := range rels {
			if ex := merged[r.Name]; ex == nil {
				cp := &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...)}
				merged[r.Name] = cp
				order = append(order, r.Name)
			} else {
				for _, a := range r.Attrs {
					if !ex.HasAttr(a) {
						ex.Attrs = append(ex.Attrs, a)
					}
				}
			}
		}
	}
	var rels []*Relation
	for _, n := range order {
		rels = append(rels, merged[n])
	}
	cat, err := NewCatalog(rels...)
	if err != nil {
		return nil, nil, err
	}
	for _, q := range queries {
		if err := cat.Validate(q); err != nil {
			return nil, nil, err
		}
	}
	return queries, cat, nil
}

func parseRelations(body string) ([]*Relation, error) {
	var rels []*Relation
	rest := body
	for rest != "" {
		open := strings.Index(rest, "(")
		if open < 0 {
			if strings.TrimSpace(rest) != "" {
				return nil, fmt.Errorf("trailing junk %q", strings.TrimSpace(rest))
			}
			break
		}
		name := strings.Trim(strings.TrimSpace(rest[:open]), ", ")
		if name == "" {
			return nil, fmt.Errorf("relation with empty name before %q", rest[open:])
		}
		closeIdx := strings.Index(rest[open:], ")")
		if closeIdx < 0 {
			return nil, fmt.Errorf("unclosed attribute list for %q", name)
		}
		attrText := rest[open+1 : open+closeIdx]
		var attrs []string
		for _, a := range strings.Split(attrText, ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				attrs = append(attrs, a)
			}
		}
		rels = append(rels, &Relation{Name: name, Attrs: attrs})
		rest = rest[open+closeIdx+1:]
	}
	return rels, nil
}

func parsePredicate(text string) (Predicate, error) {
	sides := strings.Split(text, "=")
	if len(sides) != 2 {
		return Predicate{}, fmt.Errorf("predicate %q: want lhs=rhs", text)
	}
	l, err := parseAttr(strings.TrimSpace(sides[0]))
	if err != nil {
		return Predicate{}, err
	}
	r, err := parseAttr(strings.TrimSpace(sides[1]))
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: l, Right: r}, nil
}

func parseAttr(text string) (Attr, error) {
	i := strings.Index(text, ".")
	if i <= 0 || i == len(text)-1 {
		return Attr{}, fmt.Errorf("attribute %q: want Rel.attr", text)
	}
	return Attr{Rel: text[:i], Name: text[i+1:]}, nil
}
