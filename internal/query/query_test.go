package query

import (
	"strings"
	"testing"
	"time"
)

func set(names ...string) map[string]bool {
	s := map[string]bool{}
	for _, n := range names {
		s[n] = true
	}
	return s
}

func TestPredicateNormalize(t *testing.T) {
	p := Predicate{Left: Attr{"S", "b"}, Right: Attr{"R", "a"}}
	n := p.Normalize()
	if n.Left.String() != "R.a" || n.Right.String() != "S.b" {
		t.Errorf("Normalize = %v", n)
	}
	if p.String() != n.String() {
		t.Error("String should render normalized form")
	}
	// Already-normalized predicates are unchanged.
	if nn := n.Normalize(); nn != n {
		t.Error("Normalize not idempotent")
	}
}

func TestPredicateSides(t *testing.T) {
	p := Predicate{Left: Attr{"R", "a"}, Right: Attr{"S", "b"}}
	if !p.Touches("R") || !p.Touches("S") || p.Touches("T") {
		t.Error("Touches wrong")
	}
	if a, ok := p.Side("R"); !ok || a.Name != "a" {
		t.Error("Side(R) wrong")
	}
	if a, ok := p.Other("R"); !ok || a.Rel != "S" {
		t.Error("Other(R) wrong")
	}
	if _, ok := p.Other("T"); ok {
		t.Error("Other(T) should not exist")
	}
	if !p.Connects(set("R"), set("S", "T")) {
		t.Error("Connects(R | S,T) should hold")
	}
	if p.Connects(set("R"), set("T")) {
		t.Error("Connects(R | T) should not hold")
	}
}

func TestParsePaperQuery(t *testing.T) {
	q, rels, err := Parse("q1: R(a) S(a,b) T(b)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q1" {
		t.Errorf("name = %q", q.Name)
	}
	if len(q.Relations) != 3 || q.Relations[0] != "R" || q.Relations[2] != "T" {
		t.Errorf("relations = %v", q.Relations)
	}
	if len(rels) != 3 || len(rels[1].Attrs) != 2 {
		t.Errorf("declared relations = %v", rels)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %v, want R.a=S.a and S.b=T.b", q.Preds)
	}
	got := []string{q.Preds[0].String(), q.Preds[1].String()}
	if got[0] != "R.a=S.a" || got[1] != "S.b=T.b" {
		t.Errorf("preds = %v", got)
	}
}

func TestParseExplicitPredicates(t *testing.T) {
	q, _, err := Parse("R(x) S(y,z) T(w) | R.x=S.y & S.z=T.w")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %v", q.Preds)
	}
	if q.Preds[0].String() != "R.x=S.y" {
		t.Errorf("pred[0] = %v", q.Preds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R(a",
		"R(a) garbage",
		"(a)",
		"R(x) S(y) | R.x=",
		"R(x) S(y) | Rx=S.y",
		"R(x) S(y) | R.x=S.y=T.z",
	}
	for _, text := range bad {
		if _, _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestNewQueryValidation(t *testing.T) {
	// Predicate over a relation not in the query.
	_, err := NewQuery("q", []string{"R", "S"}, []Predicate{{Attr{"R", "a"}, Attr{"T", "b"}}})
	if err == nil {
		t.Error("foreign-relation predicate should fail")
	}
	// Self joins are rejected.
	_, err = NewQuery("q", []string{"R"}, []Predicate{{Attr{"R", "a"}, Attr{"R", "b"}}})
	if err == nil {
		t.Error("self-join predicate should fail")
	}
	// Duplicate predicates collapse.
	q, err := NewQuery("q", []string{"R", "S"}, []Predicate{
		{Attr{"R", "a"}, Attr{"S", "a"}},
		{Attr{"S", "a"}, Attr{"R", "a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 {
		t.Errorf("duplicate predicates not collapsed: %v", q.Preds)
	}
}

func TestConnected(t *testing.T) {
	q := MustParse("q: R(a) S(a,b) T(b)")
	cases := []struct {
		set  map[string]bool
		want bool
	}{
		{set(), true},
		{set("R"), true},
		{set("R", "S"), true},
		{set("S", "T"), true},
		{set("R", "T"), false}, // no direct predicate: cross product
		{set("R", "S", "T"), true},
	}
	for _, c := range cases {
		if got := q.Connected(c.set); got != c.want {
			t.Errorf("Connected(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestIsClique(t *testing.T) {
	line := MustParse("q: R(a) S(a,b) T(b)")
	if line.IsClique() {
		t.Error("linear query is not a clique")
	}
	clique := MustParse("q: R(a,c) S(a,b) T(b,c)")
	if !clique.IsClique() {
		t.Error("triangle query is a clique")
	}
	single := MustParse("q: R(a)")
	if !single.IsClique() {
		t.Error("singleton is trivially a clique")
	}
}

func TestPredsWithinBetween(t *testing.T) {
	q := MustParse("q: R(a) S(a,b) T(b)")
	within := q.PredsWithin(set("R", "S"))
	if len(within) != 1 || within[0].String() != "R.a=S.a" {
		t.Errorf("PredsWithin = %v", within)
	}
	between := q.PredsBetween(set("R", "S"), set("T"))
	if len(between) != 1 || between[0].String() != "S.b=T.b" {
		t.Errorf("PredsBetween = %v", between)
	}
}

func TestSignatureDeduplicates(t *testing.T) {
	a := MustParse("q1: R(a) S(a,b) T(b)")
	b := MustParse("q2: T(b) S(a,b) R(a)")
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ: %q vs %q", a.Signature(), b.Signature())
	}
	c := MustParse("q3: R(a) S(a)")
	if a.Signature() == c.Signature() {
		t.Error("different queries share a signature")
	}
}

func TestCatalog(t *testing.T) {
	r := &Relation{Name: "R", Attrs: []string{"a"}, Window: time.Second}
	s := &Relation{Name: "S", Attrs: []string{"a", "b"}}
	cat, err := NewCatalog(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 || cat.Relation("R") != r || cat.Relation("X") != nil {
		t.Error("catalog lookup broken")
	}
	if got := cat.Names(); got[0] != "R" || got[1] != "S" {
		t.Errorf("Names = %v", got)
	}
	if w := cat.Window("R", time.Minute); w != time.Second {
		t.Errorf("Window(R) = %v", w)
	}
	if w := cat.Window("S", time.Minute); w != time.Minute {
		t.Errorf("Window(S) default = %v", w)
	}
	if _, err := NewCatalog(r, r); err == nil {
		t.Error("duplicate relation should fail")
	}
}

func TestCatalogValidate(t *testing.T) {
	cat := MustCatalog(
		&Relation{Name: "R", Attrs: []string{"a"}},
		&Relation{Name: "S", Attrs: []string{"a", "b"}},
	)
	good := MustParse("q: R(a) S(a)")
	if err := cat.Validate(good); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	badRel := MustParse("q: R(a) T(a)")
	if err := cat.Validate(badRel); err == nil {
		t.Error("unknown relation should fail validation")
	}
	badAttr := MustParse("q: R(z) S(z)")
	if err := cat.Validate(badAttr); err == nil {
		t.Error("unknown attribute should fail validation")
	}
}

func TestParseWorkload(t *testing.T) {
	text := `
# the paper's Sec. V example
q1: R(b) S(b,c) T(c)
q2: S(c) T(c,d) U(d)
`
	qs, cat, err := ParseWorkload(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("queries = %d", len(qs))
	}
	if cat.Len() != 4 {
		t.Fatalf("catalog = %v", cat.Names())
	}
	// S appears in both with attrs {b,c} and {c}: merged to {b,c}.
	s := cat.Relation("S")
	if !s.HasAttr("b") || !s.HasAttr("c") {
		t.Errorf("merged S attrs = %v", s.Attrs)
	}
	// T appears with {c} and {c,d}: merged to {c,d}.
	tt := cat.Relation("T")
	if !tt.HasAttr("c") || !tt.HasAttr("d") {
		t.Errorf("merged T attrs = %v", tt.Attrs)
	}
}

func TestParseWorkloadAutoNames(t *testing.T) {
	qs, _, err := ParseWorkload("R(a) S(a)\nS(b) T(b)")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Name != "q1" || qs[1].Name != "q2" {
		t.Errorf("auto names = %q, %q", qs[0].Name, qs[1].Name)
	}
}

func TestQueryString(t *testing.T) {
	q := MustParse("q1: R(a) S(a)")
	if !strings.Contains(q.String(), "R ⋈ S") {
		t.Errorf("String = %q", q.String())
	}
}

func TestRelationHelpers(t *testing.T) {
	r := &Relation{Name: "R", Attrs: []string{"a", "b"}}
	if r.Attr("a").String() != "R.a" {
		t.Error("Attr wrong")
	}
	if !r.HasAttr("b") || r.HasAttr("z") {
		t.Error("HasAttr wrong")
	}
	qa := r.QualifiedAttrs()
	if len(qa) != 2 || qa[1] != "R.b" {
		t.Errorf("QualifiedAttrs = %v", qa)
	}
	if r.String() != "R(a,b)" {
		t.Errorf("String = %q", r.String())
	}
}
