// Package query defines the logical query model of CLASH: streamed
// relations, windowed multi-way equi-join queries, and the query-graph
// utilities (connectivity, joinability) that the optimizer builds on.
//
// The paper's notation R(a),S(a,b),T(b) is supported directly: relations
// listing their join attributes, with an equi-join predicate implied
// between every pair of relations that mention the same attribute name.
package query

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Attr is a qualified attribute: relation name plus attribute name.
type Attr struct {
	Rel  string
	Name string
}

// String renders the attribute as "R.a".
func (a Attr) String() string { return a.Rel + "." + a.Name }

// Qualified returns the qualified name used in tuple schemas.
func (a Attr) Qualified() string { return a.Rel + "." + a.Name }

// Predicate is an equi-join predicate between two qualified attributes.
// Predicates are unordered; Normalize gives the canonical orientation.
type Predicate struct {
	Left  Attr
	Right Attr
}

// Normalize returns the predicate with its sides in lexicographic order,
// so that R.a=S.b and S.b=R.a compare equal.
func (p Predicate) Normalize() Predicate {
	if p.Right.String() < p.Left.String() {
		return Predicate{Left: p.Right, Right: p.Left}
	}
	return p
}

// String renders the predicate as "R.a=S.b" (normalized).
func (p Predicate) String() string {
	n := p.Normalize()
	return n.Left.String() + "=" + n.Right.String()
}

// Touches reports whether the predicate references the given relation.
func (p Predicate) Touches(rel string) bool { return p.Left.Rel == rel || p.Right.Rel == rel }

// Side returns the predicate's attribute on the given relation and whether
// the relation participates.
func (p Predicate) Side(rel string) (Attr, bool) {
	if p.Left.Rel == rel {
		return p.Left, true
	}
	if p.Right.Rel == rel {
		return p.Right, true
	}
	return Attr{}, false
}

// Other returns the attribute opposite to the given relation.
func (p Predicate) Other(rel string) (Attr, bool) {
	if p.Left.Rel == rel {
		return p.Right, true
	}
	if p.Right.Rel == rel {
		return p.Left, true
	}
	return Attr{}, false
}

// Connects reports whether the predicate joins a relation in set a with a
// relation in set b (both sets are relation-name sets).
func (p Predicate) Connects(a, b map[string]bool) bool {
	return (a[p.Left.Rel] && b[p.Right.Rel]) || (a[p.Right.Rel] && b[p.Left.Rel])
}

// Relation describes one streamed input: its name, the attributes carried
// by its tuples (unqualified), and its window length — the maximal age
// difference for a stored tuple to join with a newly arriving one.
type Relation struct {
	Name   string
	Attrs  []string
	Window time.Duration
}

// Attr returns the qualified attribute rel.name.
func (r *Relation) Attr(name string) Attr { return Attr{Rel: r.Name, Name: name} }

// HasAttr reports whether the relation carries the (unqualified) attribute.
func (r *Relation) HasAttr(name string) bool {
	for _, a := range r.Attrs {
		if a == name {
			return true
		}
	}
	return false
}

// QualifiedAttrs returns the qualified names in declaration order.
func (r *Relation) QualifiedAttrs() []string {
	out := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		out[i] = r.Name + "." + a
	}
	return out
}

// String renders the relation as "R(a, b)".
func (r *Relation) String() string {
	return r.Name + "(" + strings.Join(r.Attrs, ",") + ")"
}

// Query is a multi-way windowed equi-join over a set of streamed
// relations. Relations is ordered (presentation order); Preds holds the
// normalized equi-join predicates.
type Query struct {
	Name      string
	Relations []string
	Preds     []Predicate
}

// NewQuery builds a query, normalizing and deduplicating predicates and
// validating that every predicate touches only query relations.
func NewQuery(name string, relations []string, preds []Predicate) (*Query, error) {
	q := &Query{Name: name, Relations: append([]string(nil), relations...)}
	rset := q.RelationSet()
	seen := map[string]bool{}
	for _, p := range preds {
		n := p.Normalize()
		if !rset[n.Left.Rel] || !rset[n.Right.Rel] {
			return nil, fmt.Errorf("query %s: predicate %s references relation outside %v", name, n, relations)
		}
		if n.Left.Rel == n.Right.Rel {
			return nil, fmt.Errorf("query %s: self-join predicate %s not supported", name, n)
		}
		if !seen[n.String()] {
			seen[n.String()] = true
			q.Preds = append(q.Preds, n)
		}
	}
	sort.Slice(q.Preds, func(i, j int) bool { return q.Preds[i].String() < q.Preds[j].String() })
	return q, nil
}

// RelationSet returns the query's relations as a set.
func (q *Query) RelationSet() map[string]bool {
	s := make(map[string]bool, len(q.Relations))
	for _, r := range q.Relations {
		s[r] = true
	}
	return s
}

// Size returns the number of relations joined.
func (q *Query) Size() int { return len(q.Relations) }

// PredsWithin returns the predicates whose both sides lie inside the given
// relation set, normalized and sorted.
func (q *Query) PredsWithin(set map[string]bool) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if set[p.Left.Rel] && set[p.Right.Rel] {
			out = append(out, p)
		}
	}
	return out
}

// PredsBetween returns the predicates connecting set a to set b.
func (q *Query) PredsBetween(a, b map[string]bool) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Connects(a, b) {
			out = append(out, p)
		}
	}
	return out
}

// Connected reports whether the given subset of the query's relations is
// connected under the query's join predicates. Singleton and empty sets
// are connected by convention.
func (q *Query) Connected(set map[string]bool) bool {
	if len(set) <= 1 {
		return true
	}
	adj := map[string][]string{}
	for _, p := range q.Preds {
		if set[p.Left.Rel] && set[p.Right.Rel] {
			adj[p.Left.Rel] = append(adj[p.Left.Rel], p.Right.Rel)
			adj[p.Right.Rel] = append(adj[p.Right.Rel], p.Left.Rel)
		}
	}
	var start string
	for r := range set {
		start = r
		break
	}
	seen := map[string]bool{start: true}
	frontier := []string{start}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				frontier = append(frontier, nb)
			}
		}
	}
	return len(seen) == len(set)
}

// IsClique reports whether every pair of query relations is joined by at
// least one predicate (worst case for MIR enumeration, Sec. V-A).
func (q *Query) IsClique() bool {
	pair := map[[2]string]bool{}
	for _, p := range q.Preds {
		a, b := p.Left.Rel, p.Right.Rel
		if a > b {
			a, b = b, a
		}
		pair[[2]string{a, b}] = true
	}
	for i := 0; i < len(q.Relations); i++ {
		for j := i + 1; j < len(q.Relations); j++ {
			a, b := q.Relations[i], q.Relations[j]
			if a > b {
				a, b = b, a
			}
			if !pair[[2]string{a, b}] {
				return false
			}
		}
	}
	return true
}

// Signature is a canonical identity for the query's join structure:
// sorted relations plus sorted predicates. Two queries with equal
// signatures compute the same join (used to deduplicate generated
// workloads, Sec. VII-C).
func (q *Query) Signature() string {
	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)
	ps := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		ps[i] = p.String()
	}
	sort.Strings(ps)
	return strings.Join(rels, ",") + "|" + strings.Join(ps, "&")
}

// String renders the query in the paper's style: "q1: R ⋈ S ⋈ T".
func (q *Query) String() string {
	return q.Name + ": " + strings.Join(q.Relations, " ⋈ ")
}

// Catalog maps relation names to their descriptions. It is the static
// schema knowledge shared by the optimizer and the runtime.
type Catalog struct {
	rels  map[string]*Relation
	order []string
}

// NewCatalog builds a catalog from relations. Duplicate names are an error.
func NewCatalog(rels ...*Relation) (*Catalog, error) {
	c := &Catalog{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if _, dup := c.rels[r.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate relation %q", r.Name)
		}
		c.rels[r.Name] = r
		c.order = append(c.order, r.Name)
	}
	return c, nil
}

// MustCatalog is NewCatalog for static initialization; it panics on error.
func MustCatalog(rels ...*Relation) *Catalog {
	c, err := NewCatalog(rels...)
	if err != nil {
		panic(err)
	}
	return c
}

// Relation returns the named relation, or nil if unknown.
func (c *Catalog) Relation(name string) *Relation { return c.rels[name] }

// Names returns the relation names in registration order.
func (c *Catalog) Names() []string { return c.order }

// Len returns the number of relations.
func (c *Catalog) Len() int { return len(c.order) }

// Validate checks that every relation and attribute referenced by the
// query exists in the catalog.
func (c *Catalog) Validate(q *Query) error {
	for _, rn := range q.Relations {
		if c.rels[rn] == nil {
			return fmt.Errorf("query %s: unknown relation %q", q.Name, rn)
		}
	}
	for _, p := range q.Preds {
		for _, a := range []Attr{p.Left, p.Right} {
			r := c.rels[a.Rel]
			if r == nil {
				return fmt.Errorf("query %s: predicate %s references unknown relation %q", q.Name, p, a.Rel)
			}
			if !r.HasAttr(a.Name) {
				return fmt.Errorf("query %s: relation %q has no attribute %q", q.Name, a.Rel, a.Name)
			}
		}
	}
	return nil
}

// Window returns the relation's window, or def when the relation is
// unknown or has no window configured.
func (c *Catalog) Window(rel string, def time.Duration) time.Duration {
	if r := c.rels[rel]; r != nil && r.Window > 0 {
		return r.Window
	}
	return def
}
