// Package rng provides a small, fast, deterministic pseudo-random number
// generator (splitmix64) used by all data generators and samplers so that
// every experiment in the repository is reproducible from a seed.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
// Used for Poisson inter-arrival times in rate-controlled sources.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Fork derives an independent generator from the current state, so that
// sub-generators (one per relation, say) do not interleave draws.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0xdeadbeefcafef00d)
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s>0
// using rejection-inversion. Small n and s near 1 are the common case in
// skewed join-key generation.
type Zipf struct {
	rng  *RNG
	n    int
	cdf  []float64 // precomputed cumulative weights
	norm float64
}

// NewZipf precomputes a Zipf sampler over [0, n) with exponent s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	z := &Zipf{rng: r, n: n, cdf: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = acc
	}
	z.norm = acc
	return z
}

// Draw returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64() * z.norm
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
