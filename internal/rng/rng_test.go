package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		if v := r.Int64n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(5)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := map[int]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", vals)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("ExpFloat64 mean = %g, want ~1", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(9)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Error("fork mirrors parent")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank-0 share should be sizable for s=1.2 over 100 values.
	if float64(counts[0])/n < 0.10 {
		t.Errorf("rank-0 share %g too small", float64(counts[0])/n)
	}
}
