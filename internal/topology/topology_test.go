package topology

import (
	"strings"
	"testing"

	"clash/internal/query"
)

func sampleConfig() *Config {
	c := NewConfig(3)
	c.AddStore(&Store{ID: "R|", MIRKey: "R|", Label: "R", Rels: []string{"R"}, Parallelism: 2})
	c.AddStore(&Store{
		ID: "S|", MIRKey: "S|", Label: "S", Rels: []string{"S"},
		Partition: query.Attr{Rel: "S", Name: "a"}, Parallelism: 4,
	})
	c.Spout("R").Out = append(c.Spout("R").Out,
		Emission{Edge: "store:R", To: "R|"},
		Emission{Edge: "e1", To: "S|"})
	c.AddRule(Rule{Kind: StoreRule, Store: "R|", In: "store:R"})
	c.AddRule(Rule{Kind: ProbeRule, Store: "S|", In: "e1",
		Preds: []query.Predicate{{Left: query.Attr{Rel: "R", Name: "a"}, Right: query.Attr{Rel: "S", Name: "a"}}},
		Out:   []Emission{{Sink: "q1"}}})
	c.MarkServes("R|", "q1")
	c.MarkServes("S|", "q1")
	return c
}

func TestConfigBasics(t *testing.T) {
	c := sampleConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalTasks() != 6 {
		t.Errorf("TotalTasks = %d, want 6", c.TotalTasks())
	}
	ids := c.StoreIDs()
	if len(ids) != 2 || ids[0] != "R|" {
		t.Errorf("StoreIDs = %v", ids)
	}
	if c.RefCount("R|") != 1 {
		t.Errorf("RefCount = %d", c.RefCount("R|"))
	}
	c.MarkServes("R|", "q1") // idempotent
	if c.RefCount("R|") != 1 {
		t.Error("MarkServes not idempotent")
	}
	c.MarkServes("R|", "q2")
	if c.RefCount("R|") != 2 {
		t.Error("second query not counted")
	}
}

func TestAddStoreMerges(t *testing.T) {
	c := NewConfig(0)
	a := c.AddStore(&Store{ID: "X", Parallelism: 1})
	b := c.AddStore(&Store{ID: "X", Parallelism: 9})
	if a != b {
		t.Error("equal IDs should return the existing store")
	}
	if c.Stores["X"].Parallelism != 1 {
		t.Error("first registration should win")
	}
}

func TestStoreString(t *testing.T) {
	s := &Store{Label: "ST", Partition: query.Attr{Rel: "S", Name: "b"}, Parallelism: 4}
	if got := s.String(); got != "ST[S.b] x4" {
		t.Errorf("String = %q", got)
	}
	plain := &Store{Label: "R", Parallelism: 1}
	if got := plain.String(); got != "R x1" {
		t.Errorf("String = %q", got)
	}
	if !(&Store{Rels: []string{"R"}}).Base() || (&Store{Rels: []string{"R", "S"}}).Base() {
		t.Error("Base misreports")
	}
}

func TestValidateCatchesDanglingEmission(t *testing.T) {
	c := sampleConfig()
	c.Spout("R").Out = append(c.Spout("R").Out, Emission{Edge: "e9", To: "nope"})
	if err := c.Validate(); err == nil {
		t.Error("dangling emission not caught")
	}
}

func TestValidateCatchesEmptyEmission(t *testing.T) {
	c := sampleConfig()
	c.AddRule(Rule{Kind: ProbeRule, Store: "S|", In: "e2",
		Preds: []query.Predicate{{Left: query.Attr{Rel: "R", Name: "a"}, Right: query.Attr{Rel: "S", Name: "a"}}},
		Out:   []Emission{{}}})
	if err := c.Validate(); err == nil {
		t.Error("emission with neither target nor sink not caught")
	}
}

func TestValidateCatchesMisfiledRule(t *testing.T) {
	c := sampleConfig()
	c.Rules["S|"]["e9"] = []Rule{{Kind: StoreRule, Store: "S|", In: "e1"}}
	if err := c.Validate(); err == nil {
		t.Error("misfiled rule not caught")
	}
}

func TestValidateCatchesOrphanRuleset(t *testing.T) {
	c := sampleConfig()
	c.Rules["ghost"] = map[EdgeID][]Rule{"e": {{Kind: StoreRule, Store: "ghost", In: "e"}}}
	if err := c.Validate(); err == nil {
		t.Error("ruleset for unknown store not caught")
	}
}

func TestConfigString(t *testing.T) {
	s := sampleConfig().String()
	for _, want := range []string{"config(epoch=3", "store R x2", "store S[S.a] x4", "sink:q1", "spout R"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	// Deterministic.
	if s != sampleConfig().String() {
		t.Error("String not deterministic")
	}
}

func TestDiff(t *testing.T) {
	a := sampleConfig()
	b := NewConfig(4)
	b.AddStore(&Store{ID: "S|", Parallelism: 4})
	b.AddStore(&Store{ID: "T|", Parallelism: 4})
	added, removed := Diff(a, b)
	if len(added) != 1 || added[0] != "T|" {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "R|" {
		t.Errorf("removed = %v", removed)
	}
	added, removed = Diff(nil, nil)
	if added != nil || removed != nil {
		t.Error("Diff(nil, nil) should be empty")
	}
}

func TestRuleKindString(t *testing.T) {
	if StoreRule.String() != "store" || ProbeRule.String() != "probe" {
		t.Error("RuleKind strings wrong")
	}
}
