// Package topology describes executable CLASH processing strategies: a
// graph of partitioned relation stores connected by labeled edges, with
// per-store rulesets that tell each worker how to handle tuples arriving
// over each edge (Sec. IV-B and V-B of the paper).
//
// A Config is immutable once built; the adaptive runtime swaps entire
// configs at epoch boundaries (Sec. VI-A).
package topology

import (
	"fmt"
	"sort"
	"strings"

	"clash/internal/query"
)

// StoreID identifies a store: the MIR key plus the partitioning attribute
// (stores with equal IDs hold identical state and are shared between
// probe trees, Fig. 4).
type StoreID string

// EdgeID identifies one edge of a probe tree. Rules are keyed by the
// incoming edge: the sending store is not enough because different probe
// trees may route different (sub)relations between the same store pair.
type EdgeID string

// Store describes one relation or intermediate-result store.
type Store struct {
	ID          StoreID
	MIRKey      string // canonical MIR identity (relations + predicates)
	Label       string // short human-readable label, e.g. "ST"
	Rels        []string
	Preds       []query.Predicate // predicates materialized inside the store
	Partition   query.Attr        // zero Attr: unpartitioned (random placement)
	Parallelism int
	// SplitKeys lists the value hashes of heavy-hitter partition keys the
	// optimizer decided to split across two tasks instead of hashing onto
	// one hot partition. Inserts of a split key go to the less-loaded of
	// its two candidate tasks; probes visit both. Sorted ascending for
	// deterministic configs.
	SplitKeys []uint64
}

// Base reports whether this store holds a single input relation.
func (s *Store) Base() bool { return len(s.Rels) == 1 }

// String renders the store as "ST[S.b] x4".
func (s *Store) String() string {
	p := ""
	if s.Partition != (query.Attr{}) {
		p = "[" + s.Partition.String() + "]"
	}
	return fmt.Sprintf("%s%s x%d", s.Label, p, s.Parallelism)
}

// RuleKind distinguishes store rules from probe rules (Alg. 3).
type RuleKind int

// Rule kinds.
const (
	StoreRule RuleKind = iota // add the arriving tuple to the local store
	ProbeRule                 // probe stored tuples, emit join results
)

func (k RuleKind) String() string {
	if k == StoreRule {
		return "store"
	}
	return "probe"
}

// Emission is one output of a rule: results are sent over Edge to store
// To, or — when To is empty — to the sink of query Sink.
type Emission struct {
	Edge EdgeID
	To   StoreID
	Sink string // query name for terminal emissions
	// RouteBy is the qualified attribute of the *sending* tuple whose
	// hash routes the transfer to one partition of the target store. The
	// compiler sets it only when that attribute's equality to the
	// store's partitioning attribute is guaranteed for every rule
	// consuming this edge — via the probe's own predicates or predicates
	// every stored tuple already satisfies. Empty means the sender
	// cannot route soundly: probes broadcast, inserts fall back to the
	// store's own partitioning attribute.
	RouteBy string
}

// Rule tells a store how to process tuples arriving over edge In:
// StoreRules insert the tuple; ProbeRules join it against stored tuples
// using Preds and forward results along Out.
type Rule struct {
	Kind  RuleKind
	Store StoreID
	In    EdgeID
	Preds []query.Predicate // probe predicates (incoming ⋈ stored)
	Out   []Emission
}

// Spout is the ingestion point of one input relation; its emissions
// deliver each arriving raw tuple to the relation's own store (a
// StoreRule edge) and to the first store of every probe tree rooted at
// the relation.
type Spout struct {
	Relation string
	Out      []Emission
}

// Config is a complete deployable strategy: all stores, spouts, and the
// rulesets. Configs are identified by the epoch they take effect in.
type Config struct {
	Epoch  int64
	Stores map[StoreID]*Store
	Spouts map[string]*Spout
	// Rules indexed by store then by incoming edge (the hot path of
	// Alg. 3 consults ruleset[e_in]).
	Rules map[StoreID]map[EdgeID][]Rule
	// Serves maps each store to the queries depending on it; the
	// reference-counting teardown of Sec. VI-B uses it.
	Serves map[StoreID][]string
}

// NewConfig returns an empty config for the given epoch.
func NewConfig(epoch int64) *Config {
	return &Config{
		Epoch:  epoch,
		Stores: map[StoreID]*Store{},
		Spouts: map[string]*Spout{},
		Rules:  map[StoreID]map[EdgeID][]Rule{},
		Serves: map[StoreID][]string{},
	}
}

// AddStore registers a store, merging with an existing equal ID.
func (c *Config) AddStore(s *Store) *Store {
	if ex, ok := c.Stores[s.ID]; ok {
		return ex
	}
	c.Stores[s.ID] = s
	return s
}

// AddRule appends a rule to the target store's ruleset.
func (c *Config) AddRule(r Rule) {
	m := c.Rules[r.Store]
	if m == nil {
		m = map[EdgeID][]Rule{}
		c.Rules[r.Store] = m
	}
	m[r.In] = append(m[r.In], r)
}

// Spout returns (creating if needed) the spout for a relation.
func (c *Config) Spout(rel string) *Spout {
	s := c.Spouts[rel]
	if s == nil {
		s = &Spout{Relation: rel}
		c.Spouts[rel] = s
	}
	return s
}

// MarkServes records that the store serves the query.
func (c *Config) MarkServes(id StoreID, queryName string) {
	for _, q := range c.Serves[id] {
		if q == queryName {
			return
		}
	}
	c.Serves[id] = append(c.Serves[id], queryName)
}

// RefCount returns the number of queries served by the store.
func (c *Config) RefCount(id StoreID) int { return len(c.Serves[id]) }

// TotalTasks returns the number of worker tasks the config deploys
// (the sum of store parallelisms).
func (c *Config) TotalTasks() int {
	n := 0
	for _, s := range c.Stores {
		n += s.Parallelism
	}
	return n
}

// StoreIDs returns the store IDs in deterministic order.
func (c *Config) StoreIDs() []StoreID {
	ids := make([]StoreID, 0, len(c.Stores))
	for id := range c.Stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IsStoreEdge reports whether a StoreRule at store `to` consumes tuples
// arriving over `edge` — i.e. whether an emission over that edge
// materializes state. It resolves rule metadata for plan compilation
// (the runtime bakes the answer into each compiled emission at Install
// time; per-tuple code never calls this).
func (c *Config) IsStoreEdge(to StoreID, edge EdgeID) bool {
	for _, r := range c.Rules[to][edge] {
		if r.Kind == StoreRule {
			return true
		}
	}
	return false
}

// Validate checks referential integrity: every emission targets an
// existing store (or a sink), every rule belongs to an existing store,
// and probe rules carry at least one predicate unless the store is
// probed as a cross product (which the optimizer never emits).
func (c *Config) Validate() error {
	check := func(out []Emission, where string) error {
		for _, e := range out {
			if e.To == "" && e.Sink == "" {
				return fmt.Errorf("topology: %s: emission with neither target nor sink", where)
			}
			if e.To != "" {
				if _, ok := c.Stores[e.To]; !ok {
					return fmt.Errorf("topology: %s: emission to unknown store %q", where, e.To)
				}
			}
		}
		return nil
	}
	for rel, sp := range c.Spouts {
		if err := check(sp.Out, "spout "+rel); err != nil {
			return err
		}
	}
	for id, byEdge := range c.Rules {
		if _, ok := c.Stores[id]; !ok {
			return fmt.Errorf("topology: ruleset for unknown store %q", id)
		}
		for edge, rules := range byEdge {
			for _, r := range rules {
				if r.Store != id || r.In != edge {
					return fmt.Errorf("topology: misfiled rule %v under %s/%s", r, id, edge)
				}
				if err := check(r.Out, fmt.Sprintf("rule %s@%s", id, edge)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// String renders a readable summary of the config.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config(epoch=%d, stores=%d, tasks=%d)\n", c.Epoch, len(c.Stores), c.TotalTasks())
	for _, id := range c.StoreIDs() {
		fmt.Fprintf(&b, "  store %s\n", c.Stores[id])
		edges := make([]EdgeID, 0, len(c.Rules[id]))
		for e := range c.Rules[id] {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		for _, e := range edges {
			for _, r := range c.Rules[id][e] {
				fmt.Fprintf(&b, "    on %s: %s", e, r.Kind)
				if r.Kind == ProbeRule {
					ps := make([]string, len(r.Preds))
					for i, p := range r.Preds {
						ps[i] = p.String()
					}
					fmt.Fprintf(&b, " (%s)", strings.Join(ps, " & "))
				}
				for _, em := range r.Out {
					if em.Sink != "" {
						fmt.Fprintf(&b, " -> sink:%s", em.Sink)
					} else {
						fmt.Fprintf(&b, " -> %s/%s", em.To, em.Edge)
					}
				}
				b.WriteByte('\n')
			}
		}
	}
	var rels []string
	for rel := range c.Spouts {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		sp := c.Spouts[rel]
		fmt.Fprintf(&b, "  spout %s", rel)
		for _, em := range sp.Out {
			if em.Sink != "" {
				fmt.Fprintf(&b, " -> sink:%s", em.Sink)
			} else {
				fmt.Fprintf(&b, " -> %s/%s", em.To, em.Edge)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff summarizes what changes between two configs: stores added and
// removed. The runtime uses it for rewiring logs and store lifecycle
// (reference counting teardown).
func Diff(old, new *Config) (added, removed []StoreID) {
	if old != nil {
		for id := range old.Stores {
			if new == nil || new.Stores[id] == nil {
				removed = append(removed, id)
			}
		}
	}
	if new != nil {
		for id := range new.Stores {
			if old == nil || old.Stores[id] == nil {
				added = append(added, id)
			}
		}
	}
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return added, removed
}
