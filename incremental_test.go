package clash

import (
	"sort"
	"testing"
	"time"
)

// churnRun executes a fixed ingest schedule with mid-run query churn on
// the deterministic simulation substrate and returns every query's
// rendered results, sorted (arrival order is schedule-dependent; content
// must not be).
func churnRun(t *testing.T, incremental, measured bool) (map[string][]string, float64) {
	t.Helper()
	eng, err := Start(Config{
		Workload:         "q1: R(a) S(a,b) T(b)\nq2: S(b) T(b)",
		Substrate:        SubstrateSim,
		SimSeed:          7,
		StepMode:         true,
		DefaultWindow:    10000 * time.Nanosecond,
		EpochLength:      100,
		Adaptive:         true,
		IncrementalReopt: incremental,
		MeasuredCosts:    measured,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	results := map[string][]string{}
	collect := func(name string) {
		eng.OnResult(name, func(tp *Tuple) {
			results[name] = append(results[name], tp.String())
		})
	}
	collect("q1")
	collect("q2")

	for i := 0; i < 45; i++ {
		k := Int(int64(i % 4))
		if err := eng.Ingest("R", Time(3*i), k); err != nil {
			t.Fatal(err)
		}
		if err := eng.Ingest("S", Time(3*i+1), k, k); err != nil {
			t.Fatal(err)
		}
		if err := eng.Ingest("T", Time(3*i+2), k); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 15:
			q3, _, err := ParseQuery("q3: S(a) R(a)")
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddQuery(q3); err != nil {
				t.Fatal(err)
			}
			collect("q3")
		case 30:
			if err := eng.RemoveQuery("q2"); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Drain()
	if err := eng.Failure(); err != nil {
		t.Fatal(err)
	}
	for name := range results {
		sort.Strings(results[name])
	}
	obj := 0.0
	if p := eng.Plan(); p != nil {
		obj = p.Objective
	}
	return results, obj
}

// TestIncrementalReoptByteIdenticalResults is the end-to-end half of
// the incremental re-optimizer's acceptance: the same churn schedule,
// run with and without cross-churn optimizer state, produces
// byte-identical result sets for every query, and the final plans cost
// the same (the incremental solve is an optimization of solver effort,
// never of plan quality).
func TestIncrementalReoptByteIdenticalResults(t *testing.T) {
	scratch, scratchObj := churnRun(t, false, false)
	incr, incrObj := churnRun(t, true, false)

	for _, name := range []string{"q1", "q2", "q3"} {
		a, b := scratch[name], incr[name]
		if len(a) == 0 {
			t.Fatalf("%s: no results — test vacuous", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d results scratch, %d incremental", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: result %d differs:\n  scratch     %s\n  incremental %s", name, i, a[i], b[i])
			}
		}
	}
	if scratchObj != incrObj {
		t.Errorf("final plan cost %g incremental, %g scratch", incrObj, scratchObj)
	}
}

// TestMeasuredCostsKeepExactness pins that coefficient calibration is
// purely a planning-side concern: with runtime cost measurement (and
// the calibrated coefficients it feeds into re-optimization) switched
// on, every query's result set is byte-identical to the uncalibrated
// run. Calibration may change plans — never results.
func TestMeasuredCostsKeepExactness(t *testing.T) {
	plain, _ := churnRun(t, false, false)
	calibrated, _ := churnRun(t, true, true)

	for _, name := range []string{"q1", "q2", "q3"} {
		a, b := plain[name], calibrated[name]
		if len(a) == 0 {
			t.Fatalf("%s: no results — test vacuous", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d results plain, %d calibrated", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: result %d differs under measured costs:\n  plain      %s\n  calibrated %s", name, i, a[i], b[i])
			}
		}
	}
}
