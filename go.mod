module clash

go 1.24
