package clash

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// commitBuf is the exactly-once sink pattern from DESIGN.md §11 at the
// public API: results buffer as pending and are released (acknowledged)
// only by the OnCommit hook, which fires after a durable checkpoint. A
// crash discards pending; replay regenerates exactly that suffix.
type commitBuf struct {
	mu        sync.Mutex
	pending   []string
	committed map[string]int
}

func newCommitBuf() *commitBuf { return &commitBuf{committed: map[string]int{}} }

func (b *commitBuf) add(tp *Tuple) {
	b.mu.Lock()
	b.pending = append(b.pending, fmt.Sprint(tp))
	b.mu.Unlock()
}

func (b *commitBuf) commit() {
	b.mu.Lock()
	for _, s := range b.pending {
		b.committed[s]++
	}
	b.pending = b.pending[:0]
	b.mu.Unlock()
}

// recoveryStream is a deterministic joining workload: each step feeds
// one tuple of R, S, and T with overlapping keys.
func recoveryStream(eng *Engine, from, to int) error {
	for i := from; i < to; i++ {
		ts := Time(i + 1)
		if err := eng.Ingest("R", ts, Int(int64(i%5))); err != nil {
			return err
		}
		if err := eng.Ingest("S", ts, Int(int64(i%5)), Int(int64(i%3))); err != nil {
			return err
		}
		if err := eng.Ingest("T", ts, Int(int64(i%3))); err != nil {
			return err
		}
	}
	return nil
}

func recoveryConfig(st WALStorage, buf *commitBuf) Config {
	return Config{
		Workload:    "q1: R(a) S(a,b) T(b)",
		Synchronous: true,
		WAL:         &WALConfig{Storage: st, CheckpointEvery: 7},
		OnResult:    map[string]func(*Tuple){"q1": buf.add},
	}
}

// TestWALRecoverRoundTrip: run durably, crash mid-stream (abandon the
// engine without a final checkpoint), Recover, finish the stream — the
// committed output across both lives equals an uninterrupted run's,
// exactly once.
func TestWALRecoverRoundTrip(t *testing.T) {
	const steps = 13
	const crashAt = 8

	// Uninterrupted oracle, no WAL.
	want := map[string]int{}
	oracle, err := Start(Config{
		Workload:    "q1: R(a) S(a,b) T(b)",
		Synchronous: true,
		OnResult: map[string]func(*Tuple){"q1": func(tp *Tuple) {
			want[fmt.Sprint(tp)]++
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := recoveryStream(oracle, 0, steps); err != nil {
		t.Fatal(err)
	}
	oracle.Drain()
	oracle.Stop()
	if len(want) == 0 {
		t.Fatal("oracle produced no results — test vacuous")
	}

	// First life: ingest a prefix, then crash (no Close, no final
	// checkpoint — the WAL tail past the last anchor is stranded).
	st := NewMemWALStorage()
	buf1 := newCommitBuf()
	eng1, err := Start(recoveryConfig(st, buf1))
	if err != nil {
		t.Fatal(err)
	}
	eng1.OnCommit(buf1.commit)
	if err := recoveryStream(eng1, 0, crashAt); err != nil {
		t.Fatal(err)
	}
	if eng1.WALStats().WALBytes == 0 || eng1.WALStats().Checkpoints == 0 {
		t.Fatalf("durability layer idle before crash: %+v", eng1.WALStats())
	}
	// Crash: abandon eng1. buf1.pending is the unacknowledged output a
	// real sink would never have released.

	// Second life: recover and finish the stream.
	buf2 := newCommitBuf()
	eng2, rstats, err := Recover(recoveryConfig(st, buf2))
	if err != nil {
		t.Fatal(err)
	}
	eng2.OnCommit(buf2.commit)
	if rstats.ReplayedIngests == 0 {
		t.Error("no WAL records replayed — crash landed exactly on a checkpoint?")
	}
	if rstats.SkippedIngests == 0 {
		t.Error("no WAL records deduplicated against the checkpoint anchor")
	}
	if got, wantSeq := rstats.LastSeq, uint64(crashAt*3); got != wantSeq {
		t.Errorf("recovered to seq %d, want %d", got, wantSeq)
	}
	if err := recoveryStream(eng2, crashAt, steps); err != nil {
		t.Fatal(err)
	}
	eng2.Drain()
	if err := eng2.Close(); err != nil { // final checkpoint commits the tail
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	got := map[string]int{}
	for s, n := range buf1.committed {
		got[s] += n
	}
	for s, n := range buf2.committed {
		got[s] += n
	}
	if len(got) != len(want) {
		t.Fatalf("committed %d distinct results, oracle has %d", len(got), len(want))
	}
	for s, n := range want {
		if got[s] != n {
			t.Errorf("result %s committed %d times, want %d", s, got[s], n)
		}
	}
}

// TestStartRefusesExistingWAL: Start over non-empty storage is an
// ErrWALNotEmpty, pointing the caller at Recover.
func TestStartRefusesExistingWAL(t *testing.T) {
	st := NewMemWALStorage()
	buf := newCommitBuf()
	eng, err := Start(recoveryConfig(st, buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := recoveryStream(eng, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Start(recoveryConfig(st, newCommitBuf())); !errors.Is(err, ErrWALNotEmpty) {
		t.Errorf("Start over existing history: error %v does not wrap ErrWALNotEmpty", err)
	}
}

// TestRecoverFromCleanClose: Close flushes a final checkpoint, so a
// clean restart replays nothing and restores everything.
func TestRecoverFromCleanClose(t *testing.T) {
	st := NewMemWALStorage()
	eng, err := Start(recoveryConfig(st, newCommitBuf()))
	if err != nil {
		t.Fatal(err)
	}
	if err := recoveryStream(eng, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, rstats, err := Recover(recoveryConfig(st, newCommitBuf()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if rstats.ReplayedIngests != 0 {
		t.Errorf("replayed %d ingests after a clean Close, want 0", rstats.ReplayedIngests)
	}
	if rstats.RestoredTuples == 0 {
		t.Error("no tuples restored from the checkpoint chain")
	}
	if rstats.LastSeq != 15 {
		t.Errorf("recovered to seq %d, want 15", rstats.LastSeq)
	}
}
