package clash

// Cluster: scale-out across N full engines (shards) behind a routing
// and admission front door. State is hash-partitioned by join key
// across shards; relations no consistent key exists for are broadcast;
// results from all shards merge deterministically, so a multi-shard run
// is byte-identical to a single engine (DESIGN.md §13). Each shard is a
// complete Engine and may run any substrate, state backend, or WAL
// configuration.

import (
	"errors"
	"fmt"
	"path/filepath"

	"clash/internal/cluster"
	"clash/internal/query"
)

// Cluster-layer types, re-exported from internal/cluster.
type (
	// RoutingPolicy decides shard placement per tuple (see
	// ClusterConfig.Routing). Implementations must be deterministic.
	RoutingPolicy = cluster.RoutingPolicy
	// AdmissionPolicy is the cluster's front door: it sees every tuple
	// before routing and may shed it.
	AdmissionPolicy = cluster.AdmissionPolicy
	// TokenBucket is the built-in AdmissionPolicy: Rate tuples per
	// event-time unit with bursts up to Burst; the OverloadPolicy picks
	// shed (lossy, counted) or block (lossless debt) when dry.
	TokenBucket = cluster.TokenBucket
	// ClusterMetrics aggregates per-shard engine counters with the
	// front door's routing/admission counters.
	ClusterMetrics = cluster.Metrics
	// ClusterShardMetrics is one shard's slice of ClusterMetrics.
	ClusterShardMetrics = cluster.ShardMetrics
	// ClusterPlan is the derived sharding plan (keyed vs broadcast
	// placement per relation, owner shard per fully-broadcast query).
	ClusterPlan = cluster.Plan
	// MergeSink accumulates shard results in canonical order for
	// byte-comparable exactness checks.
	MergeSink = cluster.MergeSink
)

// NewMergeSink returns an empty deterministic merge sink.
func NewMergeSink() *MergeSink { return cluster.NewMergeSink() }

// KeyHashRouting is the exact default policy: keyed relations hash to
// one shard, broadcast relations go everywhere.
func KeyHashRouting() RoutingPolicy { return cluster.KeyHash{} }

// RoundRobinRouting spreads broadcast relations' tuples round-robin
// instead of broadcasting — higher throughput, but only sound for
// relations no query joins across shards.
func RoundRobinRouting() RoutingPolicy { return cluster.NewRoundRobin() }

// LeastLoadedRouting places broadcast relations' tuples on the shard
// with the least queued pressure (same soundness caveat as
// RoundRobinRouting).
func LeastLoadedRouting() RoutingPolicy { return cluster.LeastLoaded{} }

// ClusterConfig assembles a cluster.
type ClusterConfig struct {
	// Shards is the engine count (default 2).
	Shards int
	// Engine is the per-shard engine template. Per-shard derivations:
	// WAL.Dir becomes Dir/shard-<i>, and simulation schedule seeds are
	// decorrelated per shard. OnResult must be empty (register result
	// sinks on the cluster, which owns the merge contract), and
	// WAL.Storage cannot be shared across multiple shards.
	Engine Config
	// Routing places tuples onto shards (nil: key-hash, exact).
	Routing RoutingPolicy
	// DegreeAware derives a degree-aware policy from the sharding plan
	// and Engine.InitialEstimates: heavy-hitter keys are spread over two
	// candidate shards, exactly (ignored when Routing is set).
	DegreeAware bool
	// Admission gates tuples before routing (nil: admit everything).
	Admission AdmissionPolicy
}

// Cluster is N engines behind one Ingest front door.
type Cluster struct {
	cl      *cluster.Cluster
	engines []*Engine
}

// NewCluster starts the shard engines and wires the front door.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 2
	}
	ecfg := cfg.Engine
	if len(ecfg.OnResult) > 0 {
		return nil, errors.New("clash: register result sinks on the cluster, not the shard template")
	}
	if ecfg.WAL != nil && ecfg.WAL.Storage != nil && n > 1 {
		return nil, errors.New("clash: shards cannot share one WALStorage — set WAL.Dir for per-shard directories")
	}
	qs, cat := ecfg.Queries, ecfg.Catalog
	if qs == nil {
		if ecfg.Workload == "" {
			return nil, errors.New("clash: no workload configured")
		}
		var err error
		qs, cat, err = query.ParseWorkload(ecfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	// Every shard compiles the one parse, not its own.
	ecfg.Workload, ecfg.Queries, ecfg.Catalog = "", qs, cat

	c := &Cluster{}
	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}
	shards := make([]cluster.Shard, n)
	for i := 0; i < n; i++ {
		scfg := ecfg
		if scfg.WAL != nil {
			w := *scfg.WAL
			w.Dir = filepath.Join(w.Dir, fmt.Sprintf("shard-%d", i))
			scfg.WAL = &w
		}
		// Decorrelate simulated schedules: one shared seed would hide
		// cross-shard ordering assumptions.
		seed := scfg.Sim.Seed
		if seed == 0 {
			seed = scfg.SimSeed
		}
		scfg.Sim.Seed = seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
		eng, err := Start(scfg)
		if err != nil {
			return fail(fmt.Errorf("clash: shard %d: %w", i, err))
		}
		c.engines = append(c.engines, eng)
		shards[i] = eng
	}

	ccfg := cluster.Config{Queries: qs, Catalog: cat, Routing: cfg.Routing, Admission: cfg.Admission}
	if ccfg.Routing == nil && cfg.DegreeAware {
		plan, err := cluster.BuildPlan(qs, cat, n)
		if err != nil {
			return fail(err)
		}
		ccfg.Routing = cluster.NewDegreeAware(plan, ecfg.InitialEstimates)
	}
	cl, err := cluster.New(ccfg, shards)
	if err != nil {
		return fail(err)
	}
	c.cl = cl
	return c, nil
}

// Ingest admits and routes one tuple; a shed tuple is dropped silently
// and counted in Metrics().AdmissionDrops.
func (c *Cluster) Ingest(rel string, ts Time, vals ...Value) error {
	return c.cl.Ingest(rel, ts, vals...)
}

// OnResult registers a result callback for a query. Each result is
// delivered exactly once cluster-wide: queries with keyed relations
// materialize each result on one shard; fully-broadcast queries are
// filtered to their owner shard.
func (c *Cluster) OnResult(queryName string, fn func(*Tuple)) { c.cl.OnResult(queryName, fn) }

// Drain settles every shard.
func (c *Cluster) Drain() { c.cl.Drain() }

// Failure returns the first shard failure, if any.
func (c *Cluster) Failure() error { return c.cl.Failure() }

// Metrics aggregates cluster-level counters: per-shard queue depth,
// handled tuples and state bytes, admission drops, routing imbalance,
// and p99 ingest latency.
func (c *Cluster) Metrics() ClusterMetrics { return c.cl.Metrics() }

// Plan exposes the derived sharding plan.
func (c *Cluster) Plan() *ClusterPlan { return c.cl.Plan() }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.engines) }

// Shard returns shard i's engine (metrics, checkpoints, WAL stats).
func (c *Cluster) Shard(i int) *Engine { return c.engines[i] }

// Stop terminates every shard without flushing durable state — the
// cluster-level analogue of Engine.Stop.
func (c *Cluster) Stop() {
	for _, e := range c.engines {
		e.Stop()
	}
}

// Close drains the cluster and closes every shard (flushing final
// checkpoints on durable shards), returning the first error.
func (c *Cluster) Close() error {
	c.Drain()
	var first error
	for _, e := range c.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
