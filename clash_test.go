package clash

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	eng, err := Start(Config{
		Workload: "q1: R(a) S(a,b) T(b)",
		StepMode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	var mu sync.Mutex
	var results []*Tuple
	eng.OnResult("q1", func(tp *Tuple) {
		mu.Lock()
		results = append(results, tp)
		mu.Unlock()
	})

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(eng.Ingest("R", 1, Int(7)))
	must(eng.Ingest("S", 2, Int(7), Int(3)))
	must(eng.Ingest("T", 3, Int(3)))
	must(eng.Ingest("T", 4, Int(99))) // no partner
	eng.Drain()

	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if v, _ := results[0].Get("S.b"); v.Int() != 3 {
		t.Errorf("result = %v", results[0])
	}
	m := eng.Metrics()
	if m.Ingested != 4 || m.Results != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Start(Config{Workload: "q1: R(a"}); err == nil {
		t.Error("bad workload should fail")
	}
	if _, err := Start(Config{Workload: "q1: R(a)"}); err == nil {
		t.Error("single-relation query should fail")
	}
}

func TestOptimizeAPI(t *testing.T) {
	qs, _, err := ParseWorkload("q1: R(a) S(a,b) T(b)\nq2: S(b) T(b,c) U(c)")
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimates(0.01)
	for _, r := range []string{"R", "S", "T", "U"} {
		est.SetRate(r, 100)
	}
	joint, err := Optimize(qs, est, OptimizerOptions{DisableMIRs: true, DisablePartitioning: true, StoreParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	individual, err := OptimizeIndividually(qs, est, OptimizerOptions{DisableMIRs: true, DisablePartitioning: true, StoreParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range individual {
		sum += p.Objective
	}
	if joint.Objective >= sum {
		t.Errorf("MQO (%g) did not beat individual (%g)", joint.Objective, sum)
	}
	topo, err := CompilePlans([]*Plan{joint}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Stores) == 0 {
		t.Error("empty topology")
	}
}

func TestAdaptiveEngineAPI(t *testing.T) {
	eng, err := Start(Config{
		Workload:      "q1: R(a) S(a)",
		StepMode:      true,
		DefaultWindow: 100,
		EpochLength:   50,
		Adaptive:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	count := 0
	var mu sync.Mutex
	eng.OnResult("q1", func(*Tuple) { mu.Lock(); count++; mu.Unlock() })
	for i := 0; i < 200; i++ {
		if err := eng.Ingest("R", Time(i*2), Int(int64(i%5))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Ingest("S", Time(i*2+1), Int(int64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	mu.Lock()
	got := count
	mu.Unlock()
	if got == 0 {
		t.Error("no results")
	}
	// Reoptimizations counts installed configuration *changes*; a stable
	// workload may legitimately keep its initial plan.
	if eng.Reoptimizations() < 1 {
		t.Errorf("no configuration installed: %d", eng.Reoptimizations())
	}
	if eng.Plan() == nil || eng.Estimates() == nil {
		t.Error("plan/estimates accessors broken")
	}
	// Old epochs beyond the GC horizon are pruned; the current epoch
	// always resolves.
	if eng.Topology(1<<30) == nil {
		t.Error("no topology at the current epoch")
	}
}

func TestQueryChurnAPI(t *testing.T) {
	eng, err := Start(Config{
		Workload:      "q1: R(a) S(a)\n# S joins T too\nq2: S(b) T(b)",
		StepMode:      true,
		DefaultWindow: 1000 * time.Nanosecond,
		EpochLength:   100,
		Adaptive:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.RemoveQuery("q2"); err != nil {
		t.Fatal(err)
	}
	q3, _, err := ParseQuery("q3: R(a) S(a)")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery(q3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("R", 1, Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Failure(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronousEngineAPI(t *testing.T) {
	// The same three-way workload run twice in synchronous mode must
	// produce identical results without any Drain calls: each Ingest
	// returns only after the tuple's complete probe chain finished.
	run := func() (int, MetricsSnapshot) {
		eng, err := Start(Config{
			Workload:    "q1: R(a) S(a,b) T(b)",
			Synchronous: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Stop()
		count := 0
		eng.OnResult("q1", func(*Tuple) { count++ }) // safe: no worker goroutines
		for i := 0; i < 50; i++ {
			k := Int(int64(i % 4))
			if err := eng.Ingest("R", Time(3*i), k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("S", Time(3*i+1), k, k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("T", Time(3*i+2), k); err != nil {
				t.Fatal(err)
			}
		}
		return count, eng.Metrics()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 == 0 {
		t.Fatal("no results")
	}
	if c1 != c2 || m1.ProbeSent != m2.ProbeSent || m1.Results != m2.Results {
		t.Errorf("synchronous runs diverged: %d/%d results, %d/%d probes",
			c1, c2, m1.ProbeSent, m2.ProbeSent)
	}
	if int64(c1) != m1.Results {
		t.Errorf("callback count %d != metric %d", c1, m1.Results)
	}
}

func TestCheckpointRestoreAPI(t *testing.T) {
	cfg := Config{Workload: "q1: R(a) S(a)", Synchronous: true}
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("R", 1, Int(42)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	eng2, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Stop()
	if err := eng2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	count := 0
	eng2.OnResult("q1", func(*Tuple) { count++ })
	if err := eng2.Ingest("S", 2, Int(42)); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("restored history produced %d results, want 1", count)
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(5).Int() != 5 || Str("x").Str() != "x" || Float(1.5).Float() != 1.5 || !Bool(true).Bool() {
		t.Error("value constructors broken")
	}
}

func TestFlowSubstrateAPI(t *testing.T) {
	// The flow-controlled substrate through the public API: identical
	// results to the synchronous reference, pressure gauges readable,
	// all credits repaid once drained.
	run := func(cfg Config) (int64, MetricsSnapshot) {
		cfg.Workload = "q1: R(a) S(a,b) T(b)"
		eng, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Stop()
		var count atomic.Int64
		eng.OnResult("q1", func(*Tuple) { count.Add(1) })
		for i := 0; i < 60; i++ {
			k := Int(int64(i % 5))
			if err := eng.Ingest("R", Time(3*i), k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("S", Time(3*i+1), k, k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("T", Time(3*i+2), k); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		return count.Load(), eng.Metrics()
	}
	refCount, refM := run(Config{Synchronous: true})
	if refCount == 0 {
		t.Fatal("no results — test vacuous")
	}
	flowCount, flowM := run(Config{
		Substrate: SubstrateFlow,
		StepMode:  true, // settle multi-hop chains per tuple (exactness)
		Flow:      FlowConfig{MailboxCredits: 16},
	})
	if flowCount != refCount || flowM.Results != refM.Results {
		t.Errorf("flow substrate results %d (metric %d), synchronous reference %d",
			flowCount, flowM.Results, refM.Results)
	}
	if flowM.ShedTuples != 0 {
		t.Errorf("unexpected shedding: %d", flowM.ShedTuples)
	}

	// Pressure through the public API on a settled flow engine.
	eng, err := Start(Config{
		Workload:  "q1: R(a) S(a)",
		Substrate: SubstrateFlow,
		Flow:      FlowConfig{MailboxCredits: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Ingest("R", 1, Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("S", 2, Int(7)); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	gauges := eng.TaskGauges()
	if len(gauges) == 0 {
		t.Fatal("no task gauges through public API")
	}
	p := eng.Pressure()
	if p.QueuedMessages != 0 {
		t.Errorf("queued work after drain: %+v", p)
	}
	if want := int64(len(gauges) * 16); p.Credits != want {
		t.Errorf("credit balance %d, want full grant %d", p.Credits, want)
	}
}

func TestSimSubstrateAPI(t *testing.T) {
	// The deterministic simulation substrate through the public API:
	// identical results to the synchronous reference, identical schedule
	// traces on same-seed reruns, different schedules across seeds, and
	// a working virtual clock.
	run := func(cfg Config) (int64, []SimEvent, *Engine) {
		cfg.Workload = "q1: R(a) S(a,b) T(b)"
		var trace []SimEvent
		if cfg.Substrate == SubstrateSim {
			cfg.Sim.OnEvent = func(ev SimEvent) { trace = append(trace, ev) }
		}
		eng, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var count atomic.Int64
		eng.OnResult("q1", func(*Tuple) { count.Add(1) })
		for i := 0; i < 60; i++ {
			k := Int(int64(i % 5))
			if err := eng.Ingest("R", Time(3*i), k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("S", Time(3*i+1), k, k); err != nil {
				t.Fatal(err)
			}
			if err := eng.Ingest("T", Time(3*i+2), k); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		return count.Load(), trace, eng
	}
	refCount, _, refEng := run(Config{Synchronous: true})
	refEng.Stop()
	if refCount == 0 {
		t.Fatal("no results — test vacuous")
	}
	if refEng.VirtualClock() != nil {
		t.Error("synchronous engine reports a virtual clock")
	}

	simCfg := Config{Substrate: SubstrateSim, SimSeed: 42, StepMode: true}
	c1, t1, e1 := run(simCfg)
	c2, t2, e2 := run(simCfg)
	if c1 != refCount || c2 != refCount {
		t.Errorf("sim results %d/%d, synchronous reference %d", c1, c2, refCount)
	}
	if len(t1) == 0 || len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same-seed traces diverge at step %d", i)
		}
	}
	if vc := e1.VirtualClock(); vc == nil || vc.Now() == 0 {
		t.Error("virtual time did not advance")
	}
	e1.Stop()
	e2.Stop()

	c3, t3, e3 := run(Config{Substrate: SubstrateSim, SimSeed: 1, StepMode: true})
	defer e3.Stop()
	if c3 != refCount {
		t.Errorf("seed 1 results %d, reference %d", c3, refCount)
	}
	same := len(t3) == len(t1)
	if same {
		for i := range t3 {
			if t3[i] != t1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 42 produced the identical schedule")
	}
}
