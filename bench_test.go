package clash

// Benchmarks exercising the public clash API: optimizer entry points
// and the engine facade. The canonical per-figure benchmarks (Fig. 7,
// Fig. 8, Fig. 9 cost sweeps) live in internal/bench/benchmarks_test.go
// next to the experiments they time — this file only keeps what needs
// the root package's exports, which internal/bench cannot import.

import (
	"testing"
	"time"

	"clash/internal/ilp"
	"clash/internal/stats"
	"clash/internal/workload"
)

// BenchmarkFig9Runtime times one ILP optimization run over 100 input
// relations (Fig. 9e's y-axis).
func BenchmarkFig9Runtime(b *testing.B) {
	env := workload.NewEnv(100, 100)
	qs := env.RandomQueries(30, 3, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 5 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9QuerySize4 times optimization of size-4 queries
// (one cell of Fig. 9f).
func BenchmarkFig9QuerySize4(b *testing.B) {
	env := workload.NewEnv(100, 100)
	qs := env.RandomQueries(10, 4, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 5 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWorkedExample times the Sec. V-2 two-query ILP.
func BenchmarkOptimizeWorkedExample(b *testing.B) {
	qs, _, err := ParseWorkload("q1: R(a) S(a,b) T(b)\nq2: S(b) T(b,c) U(c)")
	if err != nil {
		b.Fatal(err)
	}
	est := NewEstimates(0.01)
	for _, r := range []string{"R", "S", "T", "U"} {
		est.SetRate(r, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngest measures raw runtime throughput of a two-way
// symmetric join with windowed state.
func BenchmarkEngineIngest(b *testing.B) {
	est := stats.NewEstimates(0.01)
	est.SetRate("R", 1000)
	est.SetRate("S", 1000)
	eng, err := Start(Config{
		Workload:         "q1: R(a) S(a)",
		DefaultWindow:    time.Duration(50_000),
		InitialEstimates: est,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	eng.OnResult("q1", func(*Tuple) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := eng.Ingest(rel, Time(i), Int(int64(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
	eng.Drain()
}

// BenchmarkILPSolve times the raw solver on a CLASH-shaped instance.
func BenchmarkILPSolve(b *testing.B) {
	env := workload.NewEnv(10, 100)
	qs := env.RandomQueries(10, 3, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 2 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
