package clash

// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (Sec. VII), at laptop scale. The cmd/clash-bench binary
// produces the full series; these benchmarks time one representative
// configuration each and are kept small enough for `go test -bench=.`.

import (
	"fmt"
	"testing"
	"time"

	"clash/internal/bench"
	"clash/internal/ilp"
	"clash/internal/stats"
	"clash/internal/workload"
)

// BenchmarkFig7Throughput times the five-strategy TPC-H comparison
// (Figs. 7b–7d: throughput, memory, latency come from the same run).
func BenchmarkFig7Throughput(b *testing.B) {
	for _, nq := range []int{5, 10} {
		b.Run(fmt.Sprintf("queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Fig7(bench.Fig7Config{SF: 0.0005, NumQueries: nq})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, r := range res {
						b.Logf("%s: %.0f t/s, %.2f MiB, lat %v", r.Strategy,
							r.ThroughputTPS, float64(r.MemoryBytes)/(1<<20), r.AvgLatency)
					}
				}
			}
		})
	}
}

// BenchmarkFig8Adaptive times the adaptation experiment (Fig. 8a) in
// compressed logical time.
func BenchmarkFig8Adaptive(b *testing.B) {
	cfg := bench.Fig8Config{
		Rate:   1000,
		Window: 400 * time.Millisecond,
		Epoch:  100 * time.Millisecond,
		Before: time.Second,
		After:  time.Second,
		Bucket: 200 * time.Millisecond,
	}
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{{"adaptive", true}, {"static", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig8('a', mode.adaptive, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Materialize times the Fig. 8b variant (introducing an
// intermediate-result store for a fast input stream).
func BenchmarkFig8Materialize(b *testing.B) {
	cfg := bench.Fig8Config{
		FastRate: 2000, SlowRate: 40,
		Window: 400 * time.Millisecond,
		Epoch:  100 * time.Millisecond,
		Before: time.Second,
		After:  time.Second,
		Bucket: 200 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8('b', true, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Cost10 times the probe-cost comparison over 10 input
// relations (Figs. 9a/9b) at one sweep point.
func BenchmarkFig9Cost10(b *testing.B) {
	cfg := bench.Fig9Config{Relations: 10, SolveLimit: 2 * time.Second}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9Cost(cfg, []int{20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Cost100 times the probe-cost comparison over 100 input
// relations (Figs. 9c/9d) at one sweep point.
func BenchmarkFig9Cost100(b *testing.B) {
	cfg := bench.Fig9Config{Relations: 100, SolveLimit: 5 * time.Second}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9Cost(cfg, []int{50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Runtime times one ILP optimization run over 100 input
// relations (Fig. 9e's y-axis).
func BenchmarkFig9Runtime(b *testing.B) {
	env := workload.NewEnv(100, 100)
	qs := env.RandomQueries(30, 3, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 5 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9QuerySize4 times optimization of size-4 queries
// (one cell of Fig. 9f).
func BenchmarkFig9QuerySize4(b *testing.B) {
	env := workload.NewEnv(100, 100)
	qs := env.RandomQueries(10, 4, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 5 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWorkedExample times the Sec. V-2 two-query ILP.
func BenchmarkOptimizeWorkedExample(b *testing.B) {
	qs, _, err := ParseWorkload("q1: R(a) S(a,b) T(b)\nq2: S(b) T(b,c) U(c)")
	if err != nil {
		b.Fatal(err)
	}
	est := NewEstimates(0.01)
	for _, r := range []string{"R", "S", "T", "U"} {
		est.SetRate(r, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngest measures raw runtime throughput of a two-way
// symmetric join with windowed state.
func BenchmarkEngineIngest(b *testing.B) {
	est := stats.NewEstimates(0.01)
	est.SetRate("R", 1000)
	est.SetRate("S", 1000)
	eng, err := Start(Config{
		Workload:         "q1: R(a) S(a)",
		DefaultWindow:    time.Duration(50_000),
		InitialEstimates: est,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	eng.OnResult("q1", func(*Tuple) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := eng.Ingest(rel, Time(i), Int(int64(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
	eng.Drain()
}

// BenchmarkILPSolve times the raw solver on a CLASH-shaped instance.
func BenchmarkILPSolve(b *testing.B) {
	env := workload.NewEnv(10, 100)
	qs := env.RandomQueries(10, 3, 1)
	est := env.Estimates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(qs, est, OptimizerOptions{
			Solver: ilp.Options{TimeLimit: 2 * time.Second},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
