package clash

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// clusterStream feeds every relation of the star workload in turn.
func clusterStream(cl *Cluster, t *testing.T, n int) {
	t.Helper()
	rels := []string{"R", "S", "T"}
	for i := 0; i < n; i++ {
		if err := cl.Ingest(rels[i%3], Time(i+1), Int(int64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterMatchesSingleEngine: the public-API exactness contract — a
// three-shard cluster's merged results are byte-identical to one
// engine's.
func TestClusterMatchesSingleEngine(t *testing.T) {
	const workload = "q1: R(a) S(a)\nq2: S(a) T(a)"
	cl, err := NewCluster(ClusterConfig{
		Shards: 3,
		Engine: Config{Workload: workload, Synchronous: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	sink := NewMergeSink()
	cl.OnResult("q1", sink.Add("q1"))
	cl.OnResult("q2", sink.Add("q2"))
	clusterStream(cl, t, 120)
	cl.Drain()
	if err := cl.Failure(); err != nil {
		t.Fatal(err)
	}

	eng, err := Start(Config{Workload: workload, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	oracle := NewMergeSink()
	eng.OnResult("q1", oracle.Add("q1"))
	eng.OnResult("q2", oracle.Add("q2"))
	rels := []string{"R", "S", "T"}
	for i := 0; i < 120; i++ {
		if err := eng.Ingest(rels[i%3], Time(i+1), Int(int64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()

	for _, q := range []string{"q1", "q2"} {
		if sink.Count(q) == 0 {
			t.Fatalf("%s: no results — test vacuous", q)
		}
		if !bytes.Equal(sink.Bytes(q), oracle.Bytes(q)) {
			t.Fatalf("%s: cluster (%d results) diverges from single engine (%d)",
				q, sink.Count(q), oracle.Count(q))
		}
	}
	m := cl.Metrics()
	if m.RoutedTuples != 120 || len(m.Shards) != 3 {
		t.Errorf("metrics = %+v", m)
	}
	if !cl.Plan().Relations["S"].Keyed() {
		t.Error("S not keyed in the derived plan")
	}
}

// TestClusterDurableShards: each shard owns a WAL subdirectory under
// the configured root and writes history into it.
func TestClusterDurableShards(t *testing.T) {
	dir := t.TempDir()
	cl, err := NewCluster(ClusterConfig{
		Shards: 2,
		Engine: Config{
			Workload:    "q1: R(a) S(a)",
			Synchronous: true,
			WAL:         &WALConfig{Dir: dir, NoSync: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := cl.Ingest(rel, Time(i+1), Int(int64(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sub := filepath.Join(dir, "shard-"+string(rune('0'+i)))
		ents, err := os.ReadDir(sub)
		if err != nil {
			t.Fatalf("shard %d WAL dir: %v", i, err)
		}
		if len(ents) == 0 {
			t.Fatalf("shard %d WAL dir empty", i)
		}
	}
	// Each shard's history is individually recoverable.
	for i := 0; i < 2; i++ {
		eng, _, err := Recover(Config{
			Workload:    "q1: R(a) S(a)",
			Synchronous: true,
			WAL:         &WALConfig{Dir: filepath.Join(dir, "shard-"+string(rune('0'+i))), NoSync: true},
		})
		if err != nil {
			t.Fatalf("recover shard %d: %v", i, err)
		}
		eng.Close()
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Engine: Config{}}); err == nil {
		t.Error("empty workload should fail")
	}
	if _, err := NewCluster(ClusterConfig{
		Shards: 2,
		Engine: Config{
			Workload: "q1: R(a) S(a)",
			WAL:      &WALConfig{Storage: NewMemWALStorage()},
		},
	}); err == nil {
		t.Error("shared WALStorage across shards should fail")
	}
	if _, err := NewCluster(ClusterConfig{
		Engine: Config{
			Workload: "q1: R(a) S(a)",
			OnResult: map[string]func(*Tuple){"q1": func(*Tuple) {}},
		},
	}); err == nil {
		t.Error("per-shard OnResult template should fail")
	}
}

// TestClusterAdmissionSheds: the public front door counts shed tuples
// and the cluster stays live.
func TestClusterAdmissionSheds(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Shards:    2,
		Engine:    Config{Workload: "q1: R(a) S(a)", Synchronous: true},
		Admission: &TokenBucket{Rate: 1, Burst: 5, Policy: ShedOnOverload},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < 30; i++ {
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := cl.Ingest(rel, 1, Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	m := cl.Metrics()
	if m.AdmissionDrops != 25 {
		t.Fatalf("AdmissionDrops = %d, want 25", m.AdmissionDrops)
	}
	if err := cl.Failure(); err != nil {
		t.Fatal(err)
	}
}
