// Package clash is a Go implementation of CLASH — joint optimization and
// execution of multiple multi-way stream joins, reproducing "Optimizing
// Multiple Multi-Way Stream Joins" (Dossinger & Michel, ICDE 2021).
//
// The library answers continuous windowed equi-join queries over data
// streams. Queries are written in the paper's notation:
//
//	q1: R(a) S(a,b) T(b)
//
// and are jointly optimized into a shared topology of partitioned
// relation stores connected by probe orders, by solving an integer
// linear program that shares probe-order prefixes between queries
// (multi-query optimization). The topology executes on an in-process
// scale-out runtime (one goroutine per store task), adapts to changing
// data characteristics at epoch granularity, and supports query arrival
// and expiry at runtime.
//
// Quick start:
//
//	eng, err := clash.Start(clash.Config{
//		Workload: "q1: R(a) S(a,b) T(b)",
//	})
//	eng.OnResult("q1", func(t *clash.Tuple) { fmt.Println(t) })
//	eng.Ingest("R", 1, clash.Int(7))
//	eng.Ingest("S", 2, clash.Int(7), clash.Int(3))
//	eng.Ingest("T", 3, clash.Int(3))
//	eng.Stop()
package clash

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"clash/internal/core"
	"clash/internal/query"
	"clash/internal/recovery"
	"clash/internal/runtime"
	"clash/internal/stats"
	"clash/internal/topology"
	"clash/internal/tuple"
)

// Re-exported model types. They alias the internal implementations, so
// values returned by the engine can be used with the full method sets.
type (
	// Query is a multi-way windowed equi-join over streamed relations.
	Query = query.Query
	// Relation describes one streamed input relation.
	Relation = query.Relation
	// Catalog maps relation names to their schemas and windows.
	Catalog = query.Catalog
	// Predicate is an equi-join predicate between qualified attributes.
	Predicate = query.Predicate
	// Attr is a qualified attribute (relation, name).
	Attr = query.Attr
	// Tuple is a typed record with an event timestamp.
	Tuple = tuple.Tuple
	// Value is a typed scalar value.
	Value = tuple.Value
	// Time is an event timestamp in nanoseconds.
	Time = tuple.Time
	// Estimates is a snapshot of data characteristics (rates and
	// selectivities) driving the cost-based optimization.
	Estimates = stats.Estimates
	// Plan is the result of a multi-query optimization run.
	Plan = core.Plan
	// OptimizerOptions configure candidate generation and costing.
	OptimizerOptions = core.Options
	// Topology is a deployable processing strategy.
	Topology = topology.Config
	// MetricsSnapshot is a point-in-time copy of runtime counters.
	MetricsSnapshot = runtime.Snapshot
	// SubstrateKind selects the execution substrate (see Config).
	SubstrateKind = runtime.SubstrateKind
	// FlowConfig tunes the flow-controlled substrate.
	FlowConfig = runtime.FlowConfig
	// SimConfig tunes the deterministic simulation substrate: schedule
	// seed, virtual-time step, flow-control model, schedule-trace and
	// fault-injection hooks.
	SimConfig = runtime.SimConfig
	// SimEvent is one scheduling decision of the simulation substrate
	// (the schedule trace element).
	SimEvent = runtime.SimEvent
	// Clock is the engine's time source (virtual on SubstrateSim).
	Clock = runtime.Clock
	// VirtualClock is a manually advanced clock: simulated time moves
	// per dispatched message and via Advance (fast-forward).
	VirtualClock = runtime.VirtualClock
	// OverloadPolicy is the flow substrate's behaviour on exhausted
	// credit: block the producer or shed the tuple.
	OverloadPolicy = runtime.OverloadPolicy
	// StateBackendKind selects the task-store implementation (see
	// Config.StateBackend).
	StateBackendKind = runtime.StateBackendKind
	// StatePolicy is the engine's behaviour when materialized state
	// exceeds Config.StateLimitBytes: fail or evict oldest epochs.
	StatePolicy = runtime.StatePolicy
	// Pressure is the engine's aggregated overload signal.
	Pressure = runtime.Pressure
	// TaskGauge is one store task's pressure reading.
	TaskGauge = runtime.TaskGauge
	// SupervisionConfig tunes the task panic supervisor: restart budget
	// and backoff (see Config.Supervision).
	SupervisionConfig = runtime.SupervisionConfig
	// WALStorage is the append-only two-stream storage the durability
	// layer writes to (see WALConfig).
	WALStorage = recovery.Storage
	// MemWALStorage is an in-memory WALStorage for tests and examples.
	MemWALStorage = recovery.MemStorage
	// DirWALStorage is a directory-backed WALStorage (one append-only
	// file per stream, optionally fsynced per append).
	DirWALStorage = recovery.DirStorage
	// RecoveryStats summarizes what Recover did: checkpoint records
	// composed, tuples restored, WAL records replayed and deduplicated,
	// torn bytes truncated.
	RecoveryStats = recovery.Stats
	// WALStats is a snapshot of the durability layer's counters.
	WALStats = recovery.ManagerStats
)

// Execution substrates and overload policies (runtime/flow.go).
const (
	// SubstrateAuto resolves from Config.Synchronous.
	SubstrateAuto = runtime.SubstrateAuto
	// SubstrateSynchronous runs the whole topology on the ingesting
	// goroutine: exact, deterministic; single-goroutine ingest only.
	SubstrateSynchronous = runtime.SubstrateSynchronous
	// SubstrateUnbounded is the free-running default: one goroutine per
	// task, unbounded buffering under overload (the paper's Fig. 8a).
	SubstrateUnbounded = runtime.SubstrateUnbounded
	// SubstrateFlow bounds queueing with credit-based backpressure and
	// runs all tasks on a shared worker pool.
	SubstrateFlow = runtime.SubstrateFlow
	// SubstrateSim is the deterministic simulation substrate: a seeded
	// single-threaded scheduler over a virtual clock. One seed
	// reproduces one exact interleaving; a seed sweep explores
	// thousands. Single-goroutine ingest only.
	SubstrateSim = runtime.SubstrateSim
	// BlockOnOverload throttles Ingest when credits run out (lossless).
	BlockOnOverload = runtime.BlockOnOverload
	// ShedOnOverload drops tuples when credits run out (lossy, live).
	ShedOnOverload = runtime.ShedOnOverload
)

// State backends and bounded-memory policies (runtime/state.go,
// DESIGN.md §10).
const (
	// BackendContainer is the default store layout: per-epoch containers
	// with map-based local indices — the differential oracle.
	BackendContainer = runtime.BackendContainer
	// BackendColumnar is the epoch-ring columnar store: flat per-epoch
	// segments, open-addressed hash indices, int32 posting chains.
	BackendColumnar = runtime.BackendColumnar
	// BackendTiered keeps hot epochs in the columnar ring and spills
	// cold whole epochs to an mmap'd on-disk segment file bounded by
	// StateHotBytes, with filter stubs so probes skip cold segments
	// without touching disk. Results stay byte-identical to the
	// in-memory backends; resident memory follows the hot budget.
	BackendTiered = runtime.BackendTiered
	// EvictFail terminates the engine with ErrMemoryLimit when
	// materialized state exceeds StateLimitBytes (the default).
	EvictFail = runtime.EvictFail
	// EvictOldestEpoch sheds whole epochs, oldest first, when state
	// exceeds StateLimitBytes: bounded memory, counted drops, and the
	// engine stays live.
	EvictOldestEpoch = runtime.EvictOldestEpoch
)

// ErrMemoryLimit is the terminal failure of an engine that exceeded
// its MemoryLimitBytes budget (state plus queued messages).
var ErrMemoryLimit = runtime.ErrMemoryLimit

// ErrTaskFailed is the terminal failure of an engine with a task that
// exhausted its supervisor restart budget (Config.Supervision).
var ErrTaskFailed = runtime.ErrTaskFailed

// ErrCorruptSnapshot is reported (wrapped) by Restore for truncated or
// corrupt snapshot bytes.
var ErrCorruptSnapshot = runtime.ErrCorruptSnapshot

// ErrCorruptWAL is reported (wrapped) by Recover when a CRC-valid WAL
// record fails to decode — real corruption, as opposed to a torn tail,
// which recovery silently truncates away.
var ErrCorruptWAL = recovery.ErrCorruptWAL

// ErrWALNotEmpty is reported by Start when Config.WAL points at
// storage that already holds history — restarting over it is Recover's
// job; overwriting it would lose the one copy of the state.
var ErrWALNotEmpty = recovery.ErrStorageNotEmpty

// NewMemWALStorage returns an empty in-memory WALStorage. State written
// to it dies with the process — use it for tests, examples, and
// overhead measurement, not durability.
func NewMemWALStorage() *MemWALStorage { return recovery.NewMemStorage() }

// NewDirWALStorage opens (or creates) a directory-backed WALStorage:
// one append-only file per stream. With syncEachAppend, every record is
// fsynced before Ingest returns — the durable configuration.
func NewDirWALStorage(dir string, syncEachAppend bool) (*DirWALStorage, error) {
	return recovery.NewDirStorage(dir, syncEachAppend)
}

// Int wraps an int64 as a Value.
func Int(v int64) Value { return tuple.IntValue(v) }

// Str wraps a string as a Value.
func Str(v string) Value { return tuple.StringValue(v) }

// Float wraps a float64 as a Value.
func Float(v float64) Value { return tuple.FloatValue(v) }

// Bool wraps a bool as a Value.
func Bool(v bool) Value { return tuple.BoolValue(v) }

// ParseQuery parses one query in the paper's notation, returning the
// query and the relations it declares.
func ParseQuery(text string) (*Query, []*Relation, error) { return query.Parse(text) }

// ParseWorkload parses one query per line and a merged catalog.
func ParseWorkload(text string) ([]*Query, *Catalog, error) { return query.ParseWorkload(text) }

// NewEstimates returns an empty estimates snapshot with the given
// fallback selectivity for unobserved predicates.
func NewEstimates(defaultSelectivity float64) *Estimates {
	return stats.NewEstimates(defaultSelectivity)
}

// Optimize jointly optimizes the queries against the estimates (the
// paper's CMQO). Use OptimizerOptions' zero value for defaults.
func Optimize(queries []*Query, est *Estimates, opts OptimizerOptions) (*Plan, error) {
	return core.NewOptimizer(opts).Optimize(queries, est)
}

// OptimizeIndividually optimizes each query in isolation (the paper's
// per-query baseline used by the FS/SS sharing strategies).
func OptimizeIndividually(queries []*Query, est *Estimates, opts OptimizerOptions) ([]*Plan, error) {
	return core.NewOptimizer(opts).OptimizeIndividually(queries, est)
}

// CompilePlans translates plans into a deployable topology. With shared
// true, equal stores and probe-tree prefixes merge across plans.
func CompilePlans(plans []*Plan, shared bool) (*Topology, error) {
	return core.Compile(plans, core.CompileOptions{Shared: shared})
}

// WALConfig enables durable crash recovery (DESIGN.md §11): every
// ingest is written ahead to a CRC-framed log, materialized state is
// checkpointed incrementally every CheckpointEvery ingests, and a
// crashed process resumes via Recover — checkpoint chain plus WAL
// replay, deduplicated by sequence number, exactly once.
type WALConfig struct {
	// Dir is the directory holding the log files. The engine opens it
	// with NewDirWALStorage and owns the handle (Close releases it).
	// Ignored when Storage is set.
	Dir string
	// NoSync skips the per-append fsync on Dir storage: faster, but a
	// machine crash (not just a process crash) can tear the log tail.
	// Recovery still handles torn tails by truncation; the cost is the
	// unsynced suffix, re-ingested from the source.
	NoSync bool
	// Storage overrides Dir with a caller-provided WALStorage. The
	// caller keeps ownership: Close does not release it.
	Storage WALStorage
	// CheckpointEvery is the incremental-checkpoint cadence in ingested
	// tuples (0 = the default, 64). Smaller means shorter replay after
	// a crash; larger means less checkpoint traffic.
	CheckpointEvery int
}

func (w *WALConfig) open() (st WALStorage, owned io.Closer, err error) {
	if w.Storage != nil {
		return w.Storage, nil, nil
	}
	if w.Dir == "" {
		return nil, nil, errors.New("clash: WALConfig needs Dir or Storage")
	}
	ds, err := recovery.NewDirStorage(w.Dir, !w.NoSync)
	if err != nil {
		return nil, nil, err
	}
	return ds, ds, nil
}

func (w *WALConfig) recoveryConfig() recovery.Config {
	return recovery.Config{CheckpointEvery: w.CheckpointEvery}
}

// Config configures a CLASH engine.
type Config struct {
	// Workload holds one query per line in the paper's notation.
	// Alternatively set Queries and Catalog explicitly.
	Workload string
	// Queries and Catalog override Workload when set.
	Queries []*Query
	Catalog *Catalog

	// DefaultWindow applies to relations without their own window
	// (0 = unbounded history).
	DefaultWindow time.Duration
	// EpochLength enables epoch-based adaptive re-optimization
	// (0 = static plan).
	EpochLength time.Duration
	// Adaptive re-optimizes at epoch boundaries from gathered
	// statistics. Requires EpochLength > 0.
	Adaptive bool
	// IncrementalReopt carries optimizer state across re-optimization
	// steps (query arrival/expiry, epoch boundaries): the previous plan
	// seeds the solver, candidate enumeration is memoized, and
	// unchanged ILP components are answered from cache. Re-planning
	// cost becomes proportional to the change, not the installed query
	// count; plans are never worse than re-optimizing from scratch.
	IncrementalReopt bool
	// MeasuredCosts calibrates the optimizer's cost model from runtime
	// measurements: tasks meter nanoseconds per probed, inserted, and
	// pruned tuple, and at each epoch boundary the controller blends
	// the measured insert/prune-to-probe ratios into the plan costing
	// (EWMA, clamped). Calibration changes plan choice, never results.
	MeasuredCosts bool
	// Shared enables multi-query optimization and state sharing
	// (default). Independent mode deploys one topology per query.
	Independent bool
	// Optimizer passes through optimizer options.
	Optimizer OptimizerOptions
	// InitialEstimates seed the optimizer before statistics exist.
	InitialEstimates *Estimates
	// MemoryLimitBytes fails the engine when state plus queued messages
	// exceed it (0 = unlimited).
	MemoryLimitBytes int64
	// StateBackend selects the store layout serving every task:
	// BackendContainer (default), BackendColumnar, or BackendTiered.
	// Results are byte-identical across backends; they differ in speed,
	// memory footprint, and GC pressure.
	StateBackend StateBackendKind
	// StateLimitBytes bounds materialized state — tuple payloads plus
	// storage structure plus index overhead (0 = unlimited). StatePolicy
	// decides what happens at the limit.
	StateLimitBytes int64
	// StatePolicy selects the behaviour at StateLimitBytes: EvictFail
	// (terminate, the default) or EvictOldestEpoch (shed whole epochs
	// oldest-first with counted drops; requires EpochLength > 0 to give
	// eviction a granularity finer than "everything").
	StatePolicy StatePolicy
	// StateHotBytes bounds resident (in-memory) state on BackendTiered
	// (0 = unlimited): above it, tasks demote their coldest whole
	// epochs to disk instead of evicting them — bounded memory with no
	// lost tuples. Ignored by the in-memory backends.
	StateHotBytes int64
	// StateSpillDir is where BackendTiered places its spill files
	// (default: the OS temp directory).
	StateSpillDir string
	// StepMode drains after every ingest: deterministic results, lower
	// throughput. Meant for tests and examples.
	StepMode bool
	// Synchronous executes the whole topology on the ingesting
	// goroutine: exact, deterministic join semantics with no task
	// goroutines. Ingest must be called from a single goroutine. Use it
	// when result completeness matters more than pipeline parallelism
	// (the Fig. 7 experiments run this way); the default free-running
	// mode reproduces overload buffering (Fig. 8) but may miss pairs
	// whose materialization races a probe.
	Synchronous bool
	// Substrate selects the execution substrate explicitly: synchronous,
	// unbounded-async (default), flow-controlled with credit-based
	// backpressure and a shared worker pool, or deterministic simulation
	// (seeded schedules over a virtual clock). SubstrateAuto defers to
	// the Synchronous flag.
	Substrate SubstrateKind
	// Flow tunes the flow-controlled substrate (credit grants, worker
	// count, block-vs-shed overload policy).
	Flow FlowConfig
	// Sim tunes the deterministic simulation substrate (SubstrateSim):
	// schedule seed, virtual-time step, flow-control model, trace and
	// fault hooks.
	Sim SimConfig
	// SimSeed is shorthand for Sim.Seed (ignored when Sim.Seed is set):
	// the schedule seed of a simulated run. Same seed, same inputs —
	// same interleaving, byte for byte.
	SimSeed uint64
	// Supervision tunes the task panic supervisor: a panicking store
	// task is isolated and restarted with exponential backoff up to
	// MaxRestarts consecutive times before the engine fails with
	// ErrTaskFailed. The zero value enables supervision with the
	// default budget; MaxRestarts < 0 fails fast on the first panic.
	Supervision SupervisionConfig
	// WAL, when set, makes the engine durable: write-ahead logging,
	// incremental checkpoints, and crash recovery via Recover. Start
	// requires empty storage (it refuses to orphan existing history);
	// Recover requires the history Start (or a prior Recover) wrote.
	WAL *WALConfig
	// OnResult registers per-query result callbacks before the first
	// tuple flows — equivalent to calling Engine.OnResult right after
	// Start. Recover requires this form: its WAL replay runs before
	// Recover returns, and callbacks registered afterwards would miss
	// the replayed results.
	OnResult map[string]func(*Tuple)
	// SampleSize is the per-relation, per-epoch statistics sample
	// (default 256).
	SampleSize int
	// TwoChoiceRouting enables partial-key-grouping style skew handling
	// on partitioned stores: inserts go to the less-loaded of two hash
	// candidates and probes visit both. Results stay exact; the maximum
	// task load under key skew drops at the price of doubled keyed probe
	// fan-out.
	TwoChoiceRouting bool
}

// Engine is the running system: optimizer, statistics, and the stream
// processing runtime.
type Engine struct {
	cfg     Config
	eng     *runtime.Engine
	ctl     *runtime.Controller
	col     *stats.Collector
	queries []*Query

	mgr        *recovery.Manager // non-nil iff Config.WAL is set
	ownedStore io.Closer         // Dir-backed storage the engine opened
	closeOnce  sync.Once
	closeErr   error
}

// Start optimizes the workload and launches the engine. With Config.WAL
// set, the storage must be empty — restarting over existing history is
// Recover's job, and silently orphaning it would lose the one copy of
// the state.
func Start(cfg Config) (*Engine, error) {
	if cfg.WAL == nil {
		return start(cfg, nil)
	}
	st, owned, err := cfg.WAL.open()
	if err != nil {
		return nil, err
	}
	mgr, err := recovery.NewManager(st, cfg.WAL.recoveryConfig())
	if err != nil {
		if owned != nil {
			owned.Close()
		}
		return nil, err
	}
	e, err := start(cfg, mgr)
	if err != nil {
		if owned != nil {
			owned.Close()
		}
		return nil, err
	}
	mgr.Bind(e.eng)
	e.mgr, e.ownedStore = mgr, owned
	return e, nil
}

// Recover rebuilds a durable engine from its WAL directory after a
// crash: the newest intact incremental-checkpoint chain restores the
// bulk of the state, the WAL suffix past the checkpoint anchor is
// replayed through the normal ingest path (deduplicated by sequence
// number), and the returned engine resumes exactly where the crashed
// one durably left off. Torn log tails — the expected artifact of a
// crash mid-write — are truncated, costing only the unflushed suffix.
//
// The configuration must match the crashed engine's (same workload,
// estimates, and optimizer options, so the compiled topology contains
// the logged stores). Replay happens below the adaptive controller:
// recover adaptive engines before their first epoch boundary.
func Recover(cfg Config) (*Engine, *RecoveryStats, error) {
	if cfg.WAL == nil {
		return nil, nil, errors.New("clash: Recover requires Config.WAL")
	}
	st, owned, err := cfg.WAL.open()
	if err != nil {
		return nil, nil, err
	}
	e, err := start(cfg, nil)
	if err != nil {
		if owned != nil {
			owned.Close()
		}
		return nil, nil, err
	}
	mgr, rstats, err := recovery.Recover(st, e.eng, cfg.WAL.recoveryConfig())
	if err != nil {
		e.eng.Stop()
		if owned != nil {
			owned.Close()
		}
		return nil, nil, err
	}
	e.mgr, e.ownedStore = mgr, owned
	return e, rstats, nil
}

func start(cfg Config, journal runtime.Journal) (*Engine, error) {
	qs, cat := cfg.Queries, cfg.Catalog
	if qs == nil {
		if cfg.Workload == "" {
			return nil, errors.New("clash: no workload configured")
		}
		var err error
		qs, cat, err = query.ParseWorkload(cfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	if cat == nil {
		return nil, errors.New("clash: queries without a catalog")
	}
	for _, q := range qs {
		if err := cat.Validate(q); err != nil {
			return nil, err
		}
		if q.Size() < 2 {
			return nil, fmt.Errorf("clash: query %s joins fewer than two relations", q.Name)
		}
	}
	sample := cfg.SampleSize
	if sample <= 0 {
		sample = 256
	}
	col := stats.NewCollector(sample, 128, 1)
	est := cfg.InitialEstimates
	if est == nil {
		est = stats.NewEstimates(0.01)
		for _, name := range cat.Names() {
			est.SetRate(name, 1000)
		}
	}
	sim := cfg.Sim
	if sim.Seed == 0 {
		sim.Seed = cfg.SimSeed
	}
	eng := runtime.New(runtime.Config{
		Catalog:          cat,
		DefaultWindow:    cfg.DefaultWindow,
		EpochLength:      cfg.EpochLength,
		MemoryLimitBytes: cfg.MemoryLimitBytes,
		StateBackend:     cfg.StateBackend,
		StateLimitBytes:  cfg.StateLimitBytes,
		StatePolicy:      cfg.StatePolicy,
		StateHotBytes:    cfg.StateHotBytes,
		StateSpillDir:    cfg.StateSpillDir,
		StepMode:         cfg.StepMode,
		Synchronous:      cfg.Synchronous,
		Substrate:        cfg.Substrate,
		Flow:             cfg.Flow,
		Sim:              sim,
		Supervision:      cfg.Supervision,
		Journal:          journal,
		TwoChoiceRouting: cfg.TwoChoiceRouting,
		MeasuredCosts:    cfg.MeasuredCosts,
		Observer:         func(rel string, t *tuple.Tuple) { col.Observe(rel, t) },
	})
	ctl, err := runtime.NewController(eng, runtime.ControllerConfig{
		Optimizer:        core.NewOptimizer(cfg.Optimizer),
		Collector:        col,
		Shared:           !cfg.Independent,
		Static:           !cfg.Adaptive,
		IncrementalReopt: cfg.IncrementalReopt,
		MeasuredCosts:    cfg.MeasuredCosts,
	}, qs, est)
	if err != nil {
		return nil, err
	}
	for name, fn := range cfg.OnResult {
		eng.OnResult(name, fn)
	}
	return &Engine{cfg: cfg, eng: eng, ctl: ctl, col: col, queries: qs}, nil
}

// Ingest feeds one tuple of the relation into the engine. In adaptive
// mode it also advances the epoch controller; with WAL durability on,
// the tuple is logged before it is applied and an incremental
// checkpoint is taken when the cadence comes due.
func (e *Engine) Ingest(rel string, ts Time, vals ...Value) error {
	if err := e.eng.Ingest(rel, ts, vals...); err != nil {
		return err
	}
	if e.cfg.EpochLength > 0 {
		if err := e.ctl.Tick(); err != nil {
			return err
		}
	}
	if e.mgr != nil {
		return e.mgr.MaybeCheckpoint()
	}
	return nil
}

// OnResult registers a result callback for a query. Callbacks run on
// worker goroutines and must be fast and thread-safe.
func (e *Engine) OnResult(queryName string, fn func(*Tuple)) { e.eng.OnResult(queryName, fn) }

// AddQuery installs a new continuous query at runtime; existing store
// state is reused so results appear without a cold start (Sec. VI-B).
func (e *Engine) AddQuery(q *Query) error { return e.ctl.AddQuery(q) }

// RemoveQuery deregisters a query; stores that served only this query
// are torn down by reference counting.
func (e *Engine) RemoveQuery(name string) error { return e.ctl.RemoveQuery(name) }

// Plan returns the most recently installed plan.
func (e *Engine) Plan() *Plan { return e.ctl.Plan() }

// Estimates returns the current blended data-characteristic estimates.
func (e *Engine) Estimates() *Estimates { return e.ctl.Estimates() }

// Reoptimizations returns how many configurations have been installed.
func (e *Engine) Reoptimizations() int { return e.ctl.Reoptimizations() }

// Metrics returns a snapshot of the runtime counters.
func (e *Engine) Metrics() MetricsSnapshot { return e.eng.Metrics().Snapshot() }

// Snapshot is Metrics under the name the cluster layer's Shard
// interface expects — an Engine drops into a Cluster as one shard.
func (e *Engine) Snapshot() MetricsSnapshot { return e.eng.Metrics().Snapshot() }

// Pressure returns the engine's aggregated overload signal: queued
// work, the deepest task backlog, the flow substrate's credit balance,
// and shed counts.
func (e *Engine) Pressure() Pressure { return e.eng.Pressure() }

// TaskGauges returns a per-task pressure reading (queue depth, stored
// tuples, cumulative load), sorted by store and partition.
func (e *Engine) TaskGauges() []TaskGauge { return e.eng.TaskGauges() }

// ResetLatency clears latency aggregates (per-interval reporting).
func (e *Engine) ResetLatency() { e.eng.Metrics().ResetLatency() }

// Drain blocks until all in-flight tuples are processed. On the
// simulation substrate this runs the seeded scheduler to quiescence.
func (e *Engine) Drain() { e.eng.Drain() }

// VirtualClock returns the engine's virtual clock on the simulation
// substrate (nil elsewhere). Advance it to fast-forward simulated time
// — window-expiry and latency behaviour then plays out in microseconds
// of wall time.
func (e *Engine) VirtualClock() *VirtualClock { return e.eng.VirtualClock() }

// Failure reports a terminal engine error (e.g. the memory limit).
func (e *Engine) Failure() error { return e.eng.Failure() }

// Topology returns the configuration active at the given epoch.
func (e *Engine) Topology(epoch int64) *Topology { return e.eng.ConfigFor(epoch) }

// Checkpoint writes a snapshot of the engine's materialized store state
// (every store's windowed history) to w. Call it from the ingesting
// goroutine, or after Drain with no concurrent Ingest. A process
// restarted from the snapshot resumes with its history intact instead
// of waiting a full window for complete answers (Sec. VI-B, Fig. 6).
func (e *Engine) Checkpoint(w io.Writer) error { return e.eng.Checkpoint(w) }

// Restore loads a snapshot produced by Checkpoint into this engine.
// The engine must have been started with the same workload, estimates,
// and optimizer options, so the compiled topology contains the
// checkpointed stores with the same parallelism. Restore before the
// first Ingest; adaptive engines should restore before the first epoch
// boundary.
func (e *Engine) Restore(r io.Reader) error { return e.eng.Restore(r) }

// OnCommit registers a hook that runs after every durable checkpoint —
// the output-commit point for exactly-once sinks: buffer results as
// they arrive, release them on commit, and a crash can neither lose an
// acknowledged result nor acknowledge one twice (replay regenerates
// exactly the unreleased suffix). No-op without Config.WAL.
func (e *Engine) OnCommit(fn func()) {
	if e.mgr != nil {
		e.mgr.OnCommit(fn)
	}
}

// CommitCheckpoint forces an incremental checkpoint now, regardless of
// cadence — e.g. before a planned shutdown. No-op without Config.WAL.
func (e *Engine) CommitCheckpoint() error {
	if e.mgr == nil {
		return nil
	}
	return e.mgr.Checkpoint()
}

// WALStats reports the durability layer's counters (zero value without
// Config.WAL): bytes logged, bytes checkpointed, checkpoints taken.
func (e *Engine) WALStats() WALStats {
	if e.mgr == nil {
		return WALStats{}
	}
	return e.mgr.Stats()
}

// Stop drains and terminates the engine. A durable engine should
// prefer Close, which also flushes a final checkpoint and releases the
// WAL directory; Stop leaves the tail to be replayed by Recover.
func (e *Engine) Stop() { e.eng.Stop() }

// Close flushes a final incremental checkpoint (when WAL durability is
// on), stops the engine, and releases the engine-owned WAL storage.
// Idempotent and safe to call after Stop.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		if e.mgr != nil {
			e.closeErr = e.mgr.Close()
		}
		e.eng.Stop()
		if e.ownedStore != nil {
			if err := e.ownedStore.Close(); err != nil && e.closeErr == nil {
				e.closeErr = err
			}
		}
	})
	return e.closeErr
}
