// Tiered state: the long-state pressure survived without losing anything.
//
// examples/long-state ends in a trade — shed old epochs and lose the
// results they would have joined, or die at the budget. This
// walkthrough drives the same unbounded-window stream through a state
// budget roughly a tenth of what the window needs and shows the third
// answer (DESIGN.md §15):
//
//	container — EvictFail at the budget: the seed death;
//	columnar  — same budget, same death, just later (smaller footprint);
//	tiered    — StateHotBytes caps RESIDENT state instead: cold epochs
//	            demote to an mmap'd spill file behind Bloom-filtered
//	            stubs, probes read through to disk, and the full window
//	            stays queryable — zero evictions, bounded memory.
//
// A reference run with no budget at all supplies the ground truth: the
// tiered run must reproduce its result count and checksum exactly,
// because demotion moves bytes, not meaning (the CI sweep holds the
// stronger property — byte-identical results and traces across all
// three backends).
//
//	go run ./examples/tiered-state
package main

import (
	"errors"
	"fmt"
	"log"

	"clash"
	"clash/internal/rng"
)

const (
	tuples = 20000
	budget = 256 << 10 // bytes; the full window needs ~10x this
	epoch  = 256       // logical epoch length: the demotion granule
)

func main() {
	fmt.Printf("Driving %d tuples with an UNBOUNDED window; the window needs ~10x the %d KiB budget.\n\n",
		tuples, budget>>10)

	// Ground truth: no budget, everything resident.
	refResults, refSum, _ := run("reference (no budget)", clash.Config{})

	for _, arm := range []struct {
		name string
		cfg  clash.Config
	}{
		{"container @ budget   ", clash.Config{StateLimitBytes: budget}},
		{"columnar  @ budget   ", clash.Config{StateBackend: clash.BackendColumnar, StateLimitBytes: budget}},
		{"tiered    @ hot budget", clash.Config{StateBackend: clash.BackendTiered, StateHotBytes: budget}},
	} {
		results, sum, died := run(arm.name, arm.cfg)
		if died || results == 0 {
			continue
		}
		if results != refResults || sum != refSum {
			log.Fatalf("%s diverged from the reference: %d results (sum %d), want %d (sum %d)",
				arm.name, results, sum, refResults, refSum)
		}
		fmt.Printf("          answers match the unbudgeted reference exactly (%d results, checksum %d)\n\n",
			results, sum)
	}
}

// run ingests the stream and reports (results, checksum, died). The
// checksum folds every result's join key so a lost or duplicated
// result cannot hide behind a matching count.
func run(name string, cfg clash.Config) (int64, int64, bool) {
	cfg.Workload = "q1: R(a) S(a)"
	cfg.EpochLength = epoch
	cfg.Substrate = clash.SubstrateFlow
	cfg.Flow = clash.FlowConfig{MailboxCredits: 64}
	eng, err := clash.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	var results, sum int64
	eng.OnResult("q1", func(tp *clash.Tuple) {
		results++
		sum += tp.At(0).Int()
	})

	r := rng.New(3)
	died := -1
	var ts int64
	for i := 0; i < tuples; i++ {
		ts++
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := eng.Ingest(rel, clash.Time(ts), clash.Int(r.Int64n(48))); err != nil {
			if !errors.Is(err, clash.ErrMemoryLimit) {
				log.Fatal(err)
			}
			died = i
			break
		}
	}
	if died < 0 {
		eng.Drain()
	}
	m := eng.Metrics()
	outcome := "survived"
	if died >= 0 {
		outcome = fmt.Sprintf("DIED at tuple %d (state limit)", died)
	}
	fmt.Printf("%s  %s\n", name, outcome)
	fmt.Printf("          results=%d resident=%dKiB spilled=%dKiB demoted=%d promoted=%d coldProbes=%d/%d evicted=%d\n",
		m.Results, m.StoreBytes>>10, m.SpilledBytes>>10, m.DemotedEpochs, m.PromotedEpochs,
		m.ColdProbeHits, m.ColdProbeHits+m.ColdProbeMisses, m.EvictedTuples)
	if died >= 0 {
		fmt.Println()
	}
	return results, sum, died >= 0
}
