// Query churn: the paper's Fig. 1 scenario. Queries arrive and expire
// while streams keep flowing; the optimizer re-wires tuple routing at
// epoch boundaries, newly arriving queries reuse the windowed history of
// existing stores (Sec. VI-B), and stores whose reference count drops to
// zero disappear from the next configuration.
//
//	go run ./examples/query-churn
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"clash"
)

func main() {
	// Declare the full workload so every stream is in the catalog, then
	// immediately expire q2: phase 1 runs with q1 alone, like Fig. 1
	// before τ2.
	eng, err := clash.Start(clash.Config{
		Workload: `
q1: R(a) S(a,b) T(b)
q2: S(b) T(b,c) U(c)
`,
		StepMode:      true,
		DefaultWindow: 200, // event-time ns, matching the demo timestamps
		EpochLength:   50,
		Adaptive:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.RemoveQuery("q2"); err != nil {
		log.Fatal(err)
	}

	var q1Results, q2Results atomic.Int64
	eng.OnResult("q1", func(*clash.Tuple) { q1Results.Add(1) })
	eng.OnResult("q2", func(*clash.Tuple) { q2Results.Add(1) })

	ts := int64(0)
	feed := func(rounds int64) {
		for i := int64(0); i < rounds; i++ {
			ts += 5
			for _, in := range []struct {
				rel  string
				vals []clash.Value
			}{
				{"R", []clash.Value{clash.Int(i % 3)}},
				{"S", []clash.Value{clash.Int(i % 3), clash.Int(i % 2)}},
				{"T", []clash.Value{clash.Int(i % 2), clash.Int(i % 4)}},
				{"U", []clash.Value{clash.Int(i % 4)}},
			} {
				ts++
				if err := eng.Ingest(in.rel, clash.Time(ts), in.vals...); err != nil {
					log.Fatal(err)
				}
			}
		}
		eng.Drain()
	}

	// Phase 1 (τ0..τ1): only q1 answers.
	feed(10)
	fmt.Printf("phase 1 (q1 only):    q1=%3d  q2=%3d results\n", q1Results.Load(), q2Results.Load())

	// τ1: q2 arrives. It shares the S and T stores with q1 and reuses
	// their windowed history — results flow without a cold start.
	q2, _, err := clash.ParseQuery("q2: S(b) T(b,c) U(c)")
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.AddQuery(q2); err != nil {
		log.Fatal(err)
	}
	feed(10)
	fmt.Printf("phase 2 (q1 and q2):  q1=%3d  q2=%3d results\n", q1Results.Load(), q2Results.Load())

	// τ2: q1 expires. Reference counting retires its private R store;
	// S and T keep serving q2. Removal takes effect at the next epoch
	// boundary (tuples of the current epoch still see the old ruleset),
	// so feed a short transition before measuring.
	if err := eng.RemoveQuery("q1"); err != nil {
		log.Fatal(err)
	}
	feed(12) // cross the epoch boundary
	before := q1Results.Load()
	feed(10)
	fmt.Printf("phase 3 (q2 only):    q1=%3d (+%d)  q2=%3d results\n",
		q1Results.Load(), q1Results.Load()-before, q2Results.Load())
	fmt.Printf("\nconfigurations installed over the run: %d\n", eng.Reoptimizations())
	fmt.Println("\nfinal plan:")
	fmt.Print(eng.Plan())
}
