// TPC-H multi-query sharing: the paper's five Fig. 7a query graphs run
// under all five processing strategies (FI/SI/FS/SS/CMQO) on a small
// generated TPC-H stream, reproducing the shape of Figs. 7b–7d:
// independent execution burns memory, naive sharing helps, global
// multi-query optimization (CMQO) sends the fewest tuples.
//
//	go run ./examples/tpch-multiquery
package main

import (
	"fmt"
	"log"

	"clash/internal/bench"
)

func main() {
	fmt.Println("running the 5-query TPC-H workload under all strategies (SF 0.001)...")
	results, err := bench.Fig7(bench.Fig7Config{SF: 0.001, NumQueries: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(bench.FormatFig7(results))

	var independent, shared, mqo bench.Fig7Result
	for _, r := range results {
		switch r.Strategy {
		case bench.StormIndependent:
			independent = r
		case bench.StormShared:
			shared = r
		case bench.CLASHMQO:
			mqo = r
		}
	}
	fmt.Println()
	fmt.Printf("memory: independent uses %.1fx the state of shared execution\n",
		float64(independent.MemoryBytes)/float64(shared.MemoryBytes))
	fmt.Printf("probe load: CMQO sends %.1f%% of the tuples independent execution sends\n",
		100*float64(mqo.ProbeTuples)/float64(independent.ProbeTuples))
}
