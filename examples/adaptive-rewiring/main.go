// Adaptive rewiring: the Sec. VII-B scenario. A four-way linear join
// R(a),S(a,b),T(b,c),U(c) runs while the data characteristics flip mid-
// stream (S suddenly finds many partners in R and none in T). The
// adaptive engine re-optimizes at epoch boundaries and installs new
// probe orders two epochs later (Fig. 5); a static engine keeps the
// stale plan and drowns in intermediate results.
//
//	go run ./examples/adaptive-rewiring
package main

import (
	"fmt"
	"log"
	"time"

	"clash/internal/bench"
)

func main() {
	cfg := bench.Fig8Config{
		Rate:   1500,
		Window: 400 * time.Millisecond,
		Epoch:  100 * time.Millisecond,
		Before: time.Second,
		After:  2200 * time.Millisecond,
		Bucket: 200 * time.Millisecond,
		Fanout: 100,
	}

	fmt.Println("phase 1: every tuple finds ~1 join partner")
	fmt.Println("phase 2 (after 1s): S-tuples find 100 partners in R, none in T")
	fmt.Println("adaptive recovery expected ~0.7s after the shift (2 epochs + a window)")
	fmt.Println()

	adaptive, err := bench.Fig8('a', true, cfg)
	if err != nil {
		log.Fatal(err)
	}
	static, err := bench.Fig8('a', false, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(bench.FormatFig8(adaptive, static))
	fmt.Println()

	var staticProbes, adaptiveProbes int64
	staticFailed := false
	for _, p := range static {
		staticProbes += p.Probes
		staticFailed = staticFailed || p.Failed
	}
	for _, p := range adaptive {
		adaptiveProbes += p.Probes
	}
	fmt.Printf("probe tuples: adaptive %d vs static %d\n", adaptiveProbes, staticProbes)
	if staticFailed {
		fmt.Println("static execution died of memory overflow, as in the paper's Fig. 8a")
	}
}
