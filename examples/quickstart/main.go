// Quickstart: two multi-way join queries sharing state and probe-order
// prefixes, the paper's introductory scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clash"
)

func main() {
	// Two queries over four streams; both contain the S⋈T join, so the
	// optimizer shares the S→T probe transfer and both base stores.
	eng, err := clash.Start(clash.Config{
		Workload: `
q1: R(a) S(a,b) T(b)
q2: S(b) T(b,c) U(c)
`,
		StepMode: true, // deterministic demo output
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()

	eng.OnResult("q1", func(t *clash.Tuple) { fmt.Println("q1 ⟨R⋈S⋈T⟩:", t) })
	eng.OnResult("q2", func(t *clash.Tuple) { fmt.Println("q2 ⟨S⋈T⋈U⟩:", t) })

	fmt.Println("chosen plan:")
	fmt.Println(eng.Plan())

	// Stream a handful of tuples. Timestamps are event time (ns).
	ingest := func(rel string, ts int64, vals ...clash.Value) {
		if err := eng.Ingest(rel, clash.Time(ts), vals...); err != nil {
			log.Fatal(err)
		}
	}
	ingest("R", 10, clash.Int(1))               // R.a=1
	ingest("S", 12, clash.Int(1), clash.Int(7)) // S.a=1 S.b=7
	ingest("T", 16, clash.Int(7), clash.Int(3)) // T.b=7 T.c=3 -> q1 result
	ingest("U", 18, clash.Int(3))               // U.c=3        -> q2 result
	ingest("T", 20, clash.Int(9), clash.Int(5)) // no partners
	eng.Drain()

	m := eng.Metrics()
	fmt.Printf("\n%d tuples in, %d results out, %d probe tuples sent between stores\n",
		m.Ingested, m.Results, m.ProbeSent)
}
