// Deterministic replay: run a workload on the simulation substrate,
// where a seeded single-threaded scheduler owns every interleaving and
// a virtual clock owns time. One seed reproduces one exact schedule —
// rerunning it gives the identical trace, step for step — different
// seeds explore different interleavings while the result multiset
// stays byte-identical, and an injected fault (a stalled store task, a
// source hiccup under flow control) is replayed from its seed forever.
//
//	go run ./examples/deterministic-replay
package main

import (
	"fmt"
	"log"
	"time"

	"clash"
	"clash/internal/sim"
)

const workload = `
q1: orders(user) clicks(user,page) pages(page)
q2: clicks(page) pages(page,site) sites(site)
`

// run executes a fixed stream on a simulated engine with the given
// schedule seed, recording the schedule trace.
func run(seed uint64) (results int, trace []clash.SimEvent) {
	eng, err := clash.Start(clash.Config{
		Workload:  workload,
		Substrate: clash.SubstrateSim,
		SimSeed:   seed,
		StepMode:  true,
		Sim: clash.SimConfig{
			OnEvent: func(ev clash.SimEvent) { trace = append(trace, ev) },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	for _, q := range []string{"q1", "q2"} {
		eng.OnResult(q, func(*clash.Tuple) { results++ })
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		must(eng.Ingest("clicks", clash.Time(3*i+1), clash.Int(i%4), clash.Str("/p")))
		must(eng.Ingest("pages", clash.Time(3*i+2), clash.Str("/p"), clash.Str("s")))
		must(eng.Ingest("orders", clash.Time(3*i+3), clash.Int(i%4)))
		if i%8 == 7 {
			must(eng.Ingest("sites", clash.Time(3*i+3), clash.Str("s")))
		}
	}
	eng.Drain()
	return results, trace
}

func digest(trace []clash.SimEvent) uint64 {
	t := sim.Trace{Events: trace}
	return t.Digest()
}

func main() {
	// 1. One seed, one schedule: the rerun replays the identical trace.
	r1, t1 := run(42)
	r2, t2 := run(42)
	fmt.Printf("seed 42:  %4d results, %5d scheduling decisions, trace digest %016x\n", r1, len(t1), digest(t1))
	fmt.Printf("replay:   %4d results, %5d scheduling decisions, trace digest %016x\n", r2, len(t2), digest(t2))
	if digest(t1) != digest(t2) {
		log.Fatal("replay diverged — determinism broken")
	}

	// 2. Another seed, another schedule — same answer.
	r3, t3 := run(1337)
	fmt.Printf("seed 1337:%4d results, %5d scheduling decisions, trace digest %016x\n", r3, len(t3), digest(t3))
	if r3 != r1 {
		log.Fatal("results depend on the schedule — exactness broken")
	}
	fmt.Println("=> same results on every schedule; same schedule on every replay")

	// 3. Virtual time: fast-forward five simulated minutes in
	// microseconds of wall time — latency metrics are virtual too.
	eng, err := clash.Start(clash.Config{
		Workload: workload, Substrate: clash.SubstrateSim, SimSeed: 1, StepMode: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.OnResult("q1", func(*clash.Tuple) {})
	eng.OnResult("q2", func(*clash.Tuple) {})
	if err := eng.Ingest("clicks", 1, clash.Int(1), clash.Str("/p")); err != nil {
		log.Fatal(err)
	}
	eng.VirtualClock().Advance(5 * time.Minute)
	if err := eng.Ingest("orders", 2, clash.Int(1)); err != nil {
		log.Fatal(err)
	}
	eng.Drain()
	fmt.Printf("virtual clock after fast-forward: %v\n", time.Duration(eng.VirtualClock().Now()))
	eng.Stop()

	// 4. Fault injection through the scenario harness: a source hiccup
	// bursts held tuples into a credit-starved engine while a store
	// task stalls — found at one seed, replayed from it exactly.
	sc := sim.Scenario{
		Workload: "q1: R(a) S(a,b) T(b)",
		Window:   40,
		Stream:   sim.StreamConfig{Tuples: 300, Keys: 5, Seed: 9},
		Seed:     7,
		Credits:  4,
		StepMode: true,
		Faults: []sim.Fault{
			sim.SourceHiccup{At: 60, Hold: 80},
			sim.TaskStall{Part: -1, Every: 3, Until: 300},
		},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.VerifySubstrateIndependent(res); err != nil {
		log.Fatal(err)
	}
	_, at, err := sc.Replay(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault scenario: %d stalled picks, %d results, replay divergence at %d (-1 = identical)\n",
		res.Trace.Stalls(), res.TotalResults(), at)
	if at >= 0 {
		log.Fatal("fault replay diverged")
	}
	fmt.Println("=> the incident is a seed, not a heisenbug")
}
