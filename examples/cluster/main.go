// Cluster scale-out: N full engines behind a routing/admission front
// door, with state hash-partitioned by join key (DESIGN.md §13).
//
// The walkthrough makes the two cluster claims concrete:
//
//  1. Exactness — the sharding plan keys every relation of the star
//     workload on its join attribute, so a tuple's partners always land
//     on its own shard; the merged result stream of a 3-shard cluster
//     is byte-identical to a single engine fed the same input.
//
//  2. Admission — a token bucket at the front door sheds a burst the
//     engines never see: drops are counted, the cluster stays live,
//     and spaced traffic keeps joining.
//
//     go run ./examples/cluster
package main

import (
	"bytes"
	"fmt"
	"log"

	"clash"
)

const workload = "q1: R(a) S(a)\nq2: S(a) T(a)"

func feed(ingest func(rel string, ts clash.Time, vals ...clash.Value) error, n int) {
	rels := []string{"R", "S", "T"}
	for i := 0; i < n; i++ {
		if err := ingest(rels[i%3], clash.Time(i+1), clash.Int(int64(i%7))); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	// --- 1. Exactness: 3 shards vs one engine, byte for byte ---------
	cl, err := clash.NewCluster(clash.ClusterConfig{
		Shards: 3,
		Engine: clash.Config{Workload: workload, Synchronous: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	merged := clash.NewMergeSink()
	cl.OnResult("q1", merged.Add("q1"))
	cl.OnResult("q2", merged.Add("q2"))
	feed(cl.Ingest, 300)
	cl.Drain()

	eng, err := clash.Start(clash.Config{Workload: workload, Synchronous: true})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	oracle := clash.NewMergeSink()
	eng.OnResult("q1", oracle.Add("q1"))
	eng.OnResult("q2", oracle.Add("q2"))
	feed(eng.Ingest, 300)
	eng.Drain()

	plan := cl.Plan()
	fmt.Println("Sharding plan (derived from the workload's join predicates):")
	for _, rel := range []string{"R", "S", "T"} {
		pl := plan.Relations[rel]
		fmt.Printf("  %s -> hash(%s.%s) %% 3\n", rel, pl.Attr.Rel, pl.Attr.Name)
	}
	for _, q := range []string{"q1", "q2"} {
		match := bytes.Equal(merged.Bytes(q), oracle.Bytes(q))
		fmt.Printf("  %s: %4d results on 3 shards, %4d on one engine — byte-identical: %v\n",
			q, merged.Count(q), oracle.Count(q), match)
		if !match {
			log.Fatal("cluster diverged from the single-engine oracle")
		}
	}
	m := cl.Metrics()
	fmt.Printf("  per-shard routed: %d / %d / %d (imbalance %.2f)\n\n",
		m.Shards[0].Routed, m.Shards[1].Routed, m.Shards[2].Routed, m.Imbalance)

	// --- 2. Admission: the token bucket sheds a burst ----------------
	gated, err := clash.NewCluster(clash.ClusterConfig{
		Shards:    2,
		Engine:    clash.Config{Workload: workload, Synchronous: true},
		Admission: &clash.TokenBucket{Rate: 1, Burst: 10, Policy: clash.ShedOnOverload},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gated.Stop()
	results := clash.NewMergeSink()
	gated.OnResult("q1", results.Add("q1"))

	// 100 tuples in one event-time instant: the burst admits 10.
	for i := 0; i < 100; i++ {
		if err := gated.Ingest([]string{"R", "S"}[i%2], 1, clash.Int(0)); err != nil {
			log.Fatal(err)
		}
	}
	burst := gated.Metrics()
	// Spaced traffic afterwards is admitted in full.
	for i := 0; i < 60; i++ {
		if err := gated.Ingest([]string{"R", "S"}[i%2], clash.Time(100+10*i), clash.Int(1)); err != nil {
			log.Fatal(err)
		}
	}
	gated.Drain()
	after := gated.Metrics()
	fmt.Println("Token-bucket admission under a one-instant burst of 100:")
	fmt.Printf("  admitted %d, shed %d at the front door\n", burst.RoutedTuples, burst.AdmissionDrops)
	fmt.Printf("  after spaced traffic: admitted %d total, drops unchanged at %d, %d results — live\n",
		after.RoutedTuples, after.AdmissionDrops, results.Count("q1"))
	if err := gated.Failure(); err != nil {
		log.Fatal(err)
	}
}
