// Checkpoint and recovery: snapshot a running engine's windowed store
// state, "crash", and resume on a fresh engine without losing the join
// history — the new process answers completely right away instead of
// waiting a full window (the bootstrap problem of Sec. VI-B, Fig. 6).
//
//	go run ./examples/checkpoint-recovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"clash"
)

const workload = "q1: orders(user) clicks(user,page) pages(page)"

func start() *clash.Engine {
	eng, err := clash.Start(clash.Config{
		Workload:    workload,
		Synchronous: true, // exact, deterministic; single ingester
	})
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func main() {
	eng := start()
	results := 0
	eng.OnResult("q1", func(t *clash.Tuple) {
		results++
		fmt.Println("  result:", t)
	})

	// Phase 1: the engine accumulates windowed history.
	fmt.Println("phase 1: ingesting history")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(eng.Ingest("clicks", 10, clash.Int(1), clash.Str("/home")))
	must(eng.Ingest("clicks", 20, clash.Int(2), clash.Str("/cart")))
	must(eng.Ingest("pages", 30, clash.Str("/cart")))
	fmt.Printf("  stored tuples: %d, results so far: %d\n",
		eng.Metrics().Stored, results)

	// Snapshot, then simulate a crash.
	var snap bytes.Buffer
	must(eng.Checkpoint(&snap))
	fmt.Printf("checkpoint: %d bytes\n", snap.Len())
	eng.Stop()
	fmt.Println("crash! (engine stopped, process state lost)")

	// Phase 2: a fresh engine restores the snapshot and the late-arriving
	// order still meets its pre-crash join partners.
	eng2 := start()
	defer eng2.Stop()
	eng2.OnResult("q1", func(t *clash.Tuple) {
		results++
		fmt.Println("  result:", t)
	})
	must(eng2.Restore(&snap))
	fmt.Printf("restored engine: %d stored tuples recovered\n", eng2.Metrics().Stored)

	fmt.Println("phase 2: the order for user 2 arrives after recovery")
	must(eng2.Ingest("orders", 40, clash.Int(2)))

	if results == 0 {
		log.Fatal("recovery failed: the pre-crash history did not join")
	}
	fmt.Printf("done: %d result(s); the pre-crash clicks and pages joined the post-crash order\n", results)
}
