// Overload survival: what happens when a join topology is fed faster
// than it can process — on each execution substrate.
//
// The unbounded substrate (the paper's Fig. 8a setting) buffers the
// backlog in task mailboxes until the memory budget kills the engine.
// The flow-controlled substrate grants each task a bounded number of
// mailbox credits; when they run out, the admission gate either blocks
// the producer (lossless backpressure) or sheds tuples (lossy but
// live). Either way the engine survives sustained overload with
// bounded memory.
//
//	go run ./examples/overload-survival
package main

import (
	"errors"
	"fmt"
	"log"

	"clash"
	"clash/internal/rng"
)

const (
	tuples = 12000
	budget = 384 << 10 // shared memory budget, bytes
	window = 512       // logical join window
)

func main() {
	fmt.Printf("Driving %d tuples through a slow R⋈S topology under a %d KiB budget.\n\n",
		tuples, budget>>10)

	run("unbounded ", clash.Config{})
	run("flow-block", clash.Config{
		Substrate: clash.SubstrateFlow,
		Flow:      clash.FlowConfig{MailboxCredits: 32},
	})
	run("flow-shed ", clash.Config{
		Substrate: clash.SubstrateFlow,
		Flow:      clash.FlowConfig{MailboxCredits: 32, Policy: clash.ShedOnOverload},
	})
}

func run(name string, cfg clash.Config) {
	cfg.Workload = "q1: R(a) S(a)"
	cfg.DefaultWindow = window
	// Epochs make the (static) controller prune expired window state at
	// boundaries, so the budget measures queueing, not legitimate state.
	cfg.EpochLength = window / 2
	cfg.MemoryLimitBytes = budget
	// OverheadLoops is internal to the runtime config; emulate slow
	// consumers the public way instead: a deliberately heavy sink.
	eng, err := clash.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	spin := 0
	eng.OnResult("q1", func(*clash.Tuple) {
		for i := 0; i < 50000; i++ { // slow consumer
			spin += i ^ spin>>3
		}
	})

	r := rng.New(7)
	var ts int64
	var peakQueued int64
	died := -1
	for i := 0; i < tuples; i++ {
		ts += int64(1 + r.Intn(3))
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := eng.Ingest(rel, clash.Time(ts), clash.Int(r.Int64n(24))); err != nil {
			if !errors.Is(err, clash.ErrMemoryLimit) {
				log.Fatal(err)
			}
			died = i
			break
		}
		if i%128 == 0 {
			if p := eng.Pressure(); p.QueuedMessages > peakQueued {
				peakQueued = p.QueuedMessages
			}
		}
	}
	if died < 0 {
		eng.Drain()
	}
	m := eng.Metrics()
	outcome := "survived"
	if died >= 0 {
		outcome = fmt.Sprintf("DIED at tuple %d (memory limit)", died)
	}
	fmt.Printf("%s  %s\n", name, outcome)
	fmt.Printf("            admitted=%d shed=%d results=%d peak-queued=%d msgs\n\n",
		m.Ingested, m.ShedTuples, m.Results, peakQueued)
}
