// Long-state survival: joins whose windows hold more state than memory.
//
// The seed design dies here: with an unbounded (or very wide) window,
// materialized state only grows, and the only memory policy is
// terminating the engine with ErrMemoryLimit once the budget is hit.
// This walkthrough drives the same unbounded-window stream through
// three configurations on the flow-controlled substrate:
//
//	seed       — the seed behaviour: container store, fail at the
//	             state budget (the Fig. 8a death, now on state
//	             instead of queueing);
//	evict      — same container store, but StatePolicy
//	             EvictOldestEpoch sheds whole epochs (oldest first,
//	             counted in Metrics) instead of dying;
//	columnar   — the epoch-ring columnar backend under the same
//	             eviction policy: identical survival with a smaller
//	             resident footprint (flat segments, open-addressed
//	             indices — DESIGN.md §10).
//
// Eviction is the long-state trade (arXiv:2411.15835): results whose
// partner epoch was shed are lost, but the engine stays live, keeps
// answering over the retained horizon, and bounds its memory.
//
//	go run ./examples/long-state
package main

import (
	"errors"
	"fmt"
	"log"

	"clash"
	"clash/internal/rng"
)

const (
	tuples = 20000
	budget = 256 << 10 // state budget, bytes (payload + structure + indices)
	epoch  = 256       // logical epoch length: the eviction granularity
)

func main() {
	fmt.Printf("Driving %d tuples with an UNBOUNDED window under a %d KiB state budget.\n\n",
		tuples, budget>>10)

	run("seed    ", clash.Config{
		StatePolicy: clash.EvictFail, // the default, spelled out
	})
	run("evict   ", clash.Config{
		StatePolicy: clash.EvictOldestEpoch,
	})
	run("columnar", clash.Config{
		StateBackend: clash.BackendColumnar,
		StatePolicy:  clash.EvictOldestEpoch,
	})
}

func run(name string, cfg clash.Config) {
	cfg.Workload = "q1: R(a) S(a)"
	cfg.EpochLength = epoch
	cfg.StateLimitBytes = budget
	cfg.Substrate = clash.SubstrateFlow
	cfg.Flow = clash.FlowConfig{MailboxCredits: 64}
	eng, err := clash.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Stop()
	eng.OnResult("q1", func(*clash.Tuple) {})

	r := rng.New(3)
	died := -1
	var ts int64
	for i := 0; i < tuples; i++ {
		ts++
		rel := "R"
		if i%2 == 1 {
			rel = "S"
		}
		if err := eng.Ingest(rel, clash.Time(ts), clash.Int(r.Int64n(48))); err != nil {
			if !errors.Is(err, clash.ErrMemoryLimit) {
				log.Fatal(err)
			}
			died = i
			break
		}
	}
	if died < 0 {
		eng.Drain()
	}
	m := eng.Metrics()
	outcome := "survived"
	if died >= 0 {
		outcome = fmt.Sprintf("DIED at tuple %d (state limit)", died)
	}
	fmt.Printf("%s  %s\n", name, outcome)
	fmt.Printf("          results=%d stored=%d state=%dKiB (index %dKiB) evicted=%d epochs / %d tuples\n\n",
		m.Results, m.Stored, m.StoreBytes>>10, m.IndexBytes>>10, m.EvictedEpochs, m.EvictedTuples)
}
