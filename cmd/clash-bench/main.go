// Command clash-bench regenerates the paper's evaluation figures. Each
// -fig value prints the series the corresponding figure plots:
//
//	7b, 7c, 7d — multi-query performance on TPC-H (throughput, memory,
//	             latency) for FI/SI/FS/SS/CMQO with 5 and 10 queries
//	8a, 8b     — adaptive vs. static latency over time under changing
//	             data characteristics
//	9a..9f     — ILP probe-cost savings, problem sizes, and runtimes
//	all        — everything (the default)
//
// Scale knobs (-sf, -rate, -quick) trade fidelity for wall time; the
// defaults finish in a few minutes on a laptop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"clash/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clash-bench: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate (7b,7c,7d,8a,8b,9a..9f,all)")
		sf      = flag.Float64("sf", 0.002, "TPC-H scale factor for Fig. 7")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		solveTO = flag.Duration("solve-limit", 20*time.Second, "per-ILP time limit for Fig. 9")
		seed    = flag.Uint64("seed", 42, "workload seed")
		jsonOut = flag.String("json", "", "write the Fig. 7 series as machine-readable JSON to this file (perf tracking across PRs)")
	)
	flag.Parse()

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name) ||
			(len(name) > 1 && strings.EqualFold((*fig)[:1], name[:1]) && *fig == name[:1])
	}

	if want("7b") || want("7c") || want("7d") || *fig == "7" {
		series := runFig7(*sf, *quick, *seed)
		if *jsonOut != "" {
			if err := writeFig7JSON(*jsonOut, *sf, *seed, series); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *jsonOut)
		}
	}
	if want("8a") {
		runFig8('a', *quick, *seed)
	}
	if want("8b") {
		runFig8('b', *quick, *seed)
	}
	for _, f := range []string{"9a", "9c", "9e"} {
		if want(f) {
			runFig9Cost(f, *quick, *solveTO, *seed)
		}
	}
	if want("9b") || want("9d") {
		fmt.Println("(problem sizes are the vars/probe-orders columns of 9a/9c)")
	}
	if want("9f") {
		runFig9Sizes(*quick, *solveTO, *seed)
	}
	if *fig == "all" || strings.EqualFold(*fig, "ablation") {
		runAblations(*quick, *solveTO, *seed)
	}
}

func runAblations(quick bool, solveTO time.Duration, seed uint64) {
	nQ := 20
	if quick {
		nQ = 10
	}
	fmt.Println("=== Ablations — design choices of DESIGN.md §5 ===")
	rows, err := bench.Ablations(10, nQ, 3, seed, solveTO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatAblations(rows))
	fmt.Println()

	fmt.Println("=== Skew routing — two-choice vs. single-choice (hot key 80%) ===")
	n := 4000
	if quick {
		n = 1000
	}
	skew, err := bench.SkewAblations(n, 4, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSkewAblations(skew))
	fmt.Println()
}

// fig7Series is one Fig. 7 run at a fixed query count, as serialized
// into the -json output.
type fig7Series struct {
	Queries int          `json:"queries"`
	Results []fig7Result `json:"results"`
}

// fig7Result is one strategy bar of Figs. 7b–7d in machine-readable
// form; BENCH_fig7.json tracks these across PRs.
type fig7Result struct {
	Strategy      string  `json:"strategy"`
	ThroughputTPS float64 `json:"throughput_tps"`
	MemoryBytes   int64   `json:"memory_bytes"`
	AvgLatencyNS  int64   `json:"avg_latency_ns"`
	ProbeTuples   int64   `json:"probe_tuples"`
	Results       int64   `json:"results"`
	Stores        int     `json:"stores"`
	WallTimeNS    int64   `json:"wall_time_ns"`
}

func runFig7(sf float64, quick bool, seed uint64) []fig7Series {
	var series []fig7Series
	for _, nq := range []int{5, 10} {
		if quick && nq == 10 {
			continue
		}
		fmt.Printf("=== Fig. 7b/7c/7d — %d TPC-H queries, SF %g ===\n", nq, sf)
		res, err := bench.Fig7(bench.Fig7Config{SF: sf, NumQueries: nq, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatFig7(res))
		fmt.Println()
		s := fig7Series{Queries: nq}
		for _, r := range res {
			s.Results = append(s.Results, fig7Result{
				Strategy:      string(r.Strategy),
				ThroughputTPS: r.ThroughputTPS,
				MemoryBytes:   r.MemoryBytes,
				AvgLatencyNS:  r.AvgLatency.Nanoseconds(),
				ProbeTuples:   r.ProbeTuples,
				Results:       r.Results,
				Stores:        r.Stores,
				WallTimeNS:    r.WallTime.Nanoseconds(),
			})
		}
		series = append(series, s)
	}
	return series
}

func writeFig7JSON(path string, sf float64, seed uint64, series []fig7Series) error {
	doc := struct {
		Figure string       `json:"figure"`
		SF     float64      `json:"sf"`
		Seed   uint64       `json:"seed"`
		Series []fig7Series `json:"series"`
	}{Figure: "7", SF: sf, Seed: seed, Series: series}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runFig8(variant byte, quick bool, seed uint64) {
	cfg := bench.Fig8Config{Seed: seed}
	if quick {
		cfg.Before, cfg.After = time.Second, time.Second
		cfg.Rate = 1000
	}
	fmt.Printf("=== Fig. 8%c — adaptive vs static latency ===\n", variant)
	adaptive, err := bench.Fig8(variant, true, cfg)
	if err != nil {
		log.Fatal(err)
	}
	static, err := bench.Fig8(variant, false, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig8(adaptive, static))
	fmt.Println()
}

func runFig9Cost(fig string, quick bool, solveTO time.Duration, seed uint64) {
	nQs := []int{20, 40, 60, 80, 100}
	if quick {
		nQs = []int{20, 40}
	}
	cfg := bench.Fig9Config{Seed: seed, SolveLimit: solveTO}
	switch fig {
	case "9a":
		cfg.Relations = 10
		fmt.Println("=== Fig. 9a/9b — probe cost & problem size, 10 input relations ===")
	case "9c":
		cfg.Relations = 100
		fmt.Println("=== Fig. 9c/9d — probe cost & problem size, 100 input relations ===")
	case "9e":
		cfg.Relations = 100
		fmt.Println("=== Fig. 9e — optimization runtime, 100 input relations ===")
	}
	points, err := bench.Fig9Cost(cfg, nQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig9Cost(points))
	fmt.Println()
}

func runFig9Sizes(quick bool, solveTO time.Duration, seed uint64) {
	sizes := []int{3, 4, 5}
	nQs := []int{10, 20, 30}
	cfg := bench.Fig9Config{Relations: 100, Seed: seed, SolveLimit: solveTO, CapCandidates: 24}
	if quick {
		sizes = []int{3, 4}
		nQs = []int{10}
	}
	fmt.Println("=== Fig. 9f — optimization runtime by query size, 100 input relations ===")
	points, err := bench.Fig9QuerySizes(cfg, sizes, nQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig9Sizes(points))
	fmt.Println()
}
