// Command clash-bench regenerates the paper's evaluation figures. Each
// -fig value prints the series the corresponding figure plots:
//
//	7b, 7c, 7d — multi-query performance on TPC-H (throughput, memory,
//	             latency) for FI/SI/FS/SS/CMQO with 5 and 10 queries
//	8a, 8b     — adaptive vs. static latency over time under changing
//	             data characteristics
//	9a..9f     — ILP probe-cost savings, problem sizes, and runtimes
//	overload   — overload survival across execution substrates: the
//	             unbounded substrate dies at the memory budget while
//	             the flow-controlled substrate degrades gracefully
//	simsweep   — deterministic-schedule sweep: the TPC-H multi-query
//	             equivalence oracle across -seeds seeded interleavings
//	             on the simulation substrate, with same-seed replay
//	             verification and an injected-fault scenario (source
//	             hiccup under flow control) replayed from its seed;
//	             -backend selects the state backend of the sim runs
//	longstate  — state-backend shoot-out on a long-state workload:
//	             per-backend probe/prune ns+allocs, resident/heap
//	             bytes, and the bounded-memory eviction stage
//	             (EvictFail dies, EvictOldestEpoch survives)
//	skew       — zipf-keyed TPC-H stream under a uniform-cost vs a
//	             degree-aware plan: the degree sketches let the
//	             optimizer split heavy-hitter keys across two tasks,
//	             and the handled-tuple imbalance (max/mean) must drop
//	             while results stay identical
//	cluster    — scale-out: the TPC-H orders ⋈ lineitem stream through
//	             the cluster front door at 1/2/4 shards (key-hash
//	             routing + token-bucket admission); reports ingest
//	             throughput, routing imbalance, and admission drops,
//	             with the result count gated identical across shard
//	             counts
//	churn      — incremental re-optimization: Fig. 9-regime query churn
//	             at 100/500/1000 queries, re-optimizing every step from
//	             scratch vs with cross-churn state (incumbent warm
//	             start, MIR memo, component-solution cache); reports
//	             optimizer wall time, BnB nodes explored, memo hit
//	             rate, and plan cost per arm, with incremental cost
//	             required ≤ scratch at every step
//	chaos      — crash-recovery chaos suite: -seeds crash-restart-replay
//	             runs per state backend (task panics + torn WAL tails
//	             active), each byte-compared against an uninterrupted
//	             oracle, plus the durability tax (WAL + incremental
//	             checkpoints vs baseline, gated at <10%)
//	all        — everything (the default)
//
// Scale knobs (-sf, -rate, -quick) trade fidelity for wall time; the
// defaults finish in a few minutes on a laptop.
//
// -compare BENCH_fig7.json diffs the current Fig. 7 run against a
// checked-in baseline and exits non-zero when a tracked metric
// regresses by more than -regress-pct percent, so the perf trajectory
// across PRs is enforced rather than just recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"clash/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clash-bench: ")
	var (
		fig        = flag.String("fig", "all", "comma-separated figures to regenerate (7b,7c,7d,8a,8b,9a..9f,overload,simsweep,longstate,skew,cluster,churn,chaos,all)")
		sf         = flag.Float64("sf", 0.002, "TPC-H scale factor for Fig. 7")
		quick      = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		solveTO    = flag.Duration("solve-limit", 20*time.Second, "per-ILP time limit for Fig. 9")
		seed       = flag.Uint64("seed", 42, "workload seed")
		seeds      = flag.Int("seeds", 16, "schedule seeds for -fig simsweep")
		backendF   = flag.String("backend", "container", "state backend for the -fig simsweep runs, and filter for -fig longstate (container|columnar|tiered)")
		jsonOut    = flag.String("json", "", "write the Fig. 7 series as machine-readable JSON to this file (perf tracking across PRs)")
		compareTo  = flag.String("compare", "", "baseline Fig. 7 JSON (e.g. BENCH_fig7.json): diff this run against it and exit 1 on regressions")
		regressPct = flag.Float64("regress-pct", 10, "regression threshold for -compare, in percent")
	)
	flag.Parse()

	want := func(name string) bool {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if f == "all" || strings.EqualFold(f, name) ||
				(len(name) > 1 && strings.EqualFold(f, name[:1])) {
				return true
			}
		}
		return false
	}

	// A comparison run must reproduce the baseline's workload: adopt its
	// recorded scale factor and seed unless explicitly overridden.
	var baseline []fig7Series
	var baselineLong []bench.LongStateResult
	var baselineSkew []bench.SkewResult
	var baselineCluster []bench.ClusterBenchResult
	var baselineChurn []bench.ChurnResult
	if *compareTo != "" {
		bsf, bseed, series, longstate, skew, clusterRows, churnRows, err := readFig7JSON(*compareTo)
		if err != nil {
			log.Fatal(err)
		}
		baseline = series
		baselineLong = longstate
		baselineSkew = skew
		baselineCluster = clusterRows
		baselineChurn = churnRows
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["sf"] {
			*sf = bsf
		}
		if !explicit["seed"] {
			*seed = bseed
		}
	}

	backend, err := bench.ParseBackend(*backendF)
	if err != nil {
		log.Fatal(err)
	}

	var series []fig7Series
	var longstate []bench.LongStateResult
	if want("7b") || want("7c") || want("7d") || *fig == "7" || *compareTo != "" {
		series = runFig7(*sf, *quick, *seed)
	}
	// A longstate baseline forces the longstate run: the gate compares
	// per-backend ns/op and the tiered backend's absolute invariants.
	// An explicit -backend narrows the shoot-out to that backend.
	if want("longstate") || len(baselineLong) > 0 {
		var only []bench.StateBackendKind
		if flagWasSet("backend") {
			only = []bench.StateBackendKind{backend}
		}
		longstate = runLongState(*quick, *seed, only...)
	}
	// The skew scenario runs at full scale regardless of -quick: its
	// result counts and imbalance are deterministic in (seed, tuples),
	// so a -compare gate needs the baseline's exact stream length.
	var skewRows []bench.SkewResult
	if want("skew") || len(baselineSkew) > 0 {
		skewRows = runSkew(*seed)
	}
	// Same full-scale rule as skew: the cluster gate compares exact
	// result counts, which are deterministic in (seed, stream length).
	var clusterRows []bench.ClusterBenchResult
	if want("cluster") || len(baselineCluster) > 0 {
		clusterRows = runClusterBench(*seed)
	}
	// Churn plan costs are deterministic in (seed, node budget), so the
	// gate compares them exactly; wall times use the -regress-pct
	// threshold. Quick runs shrink the query counts, so a quick compare
	// only gates the counts present in both.
	var churnRows []bench.ChurnResult
	if want("churn") || len(baselineChurn) > 0 {
		churnRows = runChurn(*quick, *seed)
	}
	if *jsonOut != "" {
		// A written baseline must always carry the Fig. 7 series the
		// -compare gate diffs against — a longstate-only write would
		// silently turn the gate vacuous.
		if series == nil {
			log.Fatal("-json requires the Fig. 7 series; run with -fig 7 or -fig 7,longstate")
		}
		if longstate == nil {
			log.Print("note: no -fig longstate in this run — the baseline's longstate section will be absent")
		}
		if err := writeFig7JSON(*jsonOut, *sf, *seed, series, longstate, skewRows, clusterRows, churnRows); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
	if *compareTo != "" {
		ok := compareFig7(*compareTo, baseline, series, *regressPct/100)
		if len(baselineLong) > 0 && !compareLongState(baselineLong, longstate, *regressPct/100) {
			ok = false
		}
		if len(baselineSkew) > 0 && !compareSkew(baselineSkew, skewRows, *regressPct/100) {
			ok = false
		}
		if len(baselineCluster) > 0 && !compareCluster(baselineCluster, clusterRows, *regressPct/100) {
			ok = false
		}
		if len(baselineChurn) > 0 && !compareChurn(baselineChurn, churnRows, *regressPct/100) {
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
	}
	if want("overload") {
		runOverload(*quick, *seed)
	}
	if want("simsweep") {
		runSimSweep(*seeds, *quick, *seed, backend)
	}
	if want("chaos") {
		runChaos(*seeds, *quick, *seed)
	}
	if want("8a") {
		runFig8('a', *quick, *seed)
	}
	if want("8b") {
		runFig8('b', *quick, *seed)
	}
	for _, f := range []string{"9a", "9c", "9e"} {
		if want(f) {
			runFig9Cost(f, *quick, *solveTO, *seed)
		}
	}
	if want("9b") || want("9d") {
		fmt.Println("(problem sizes are the vars/probe-orders columns of 9a/9c)")
	}
	if want("9f") {
		runFig9Sizes(*quick, *solveTO, *seed)
	}
	if want("ablation") {
		runAblations(*quick, *solveTO, *seed)
	}
}

func runAblations(quick bool, solveTO time.Duration, seed uint64) {
	nQ := 20
	if quick {
		nQ = 10
	}
	fmt.Println("=== Ablations — design choices of DESIGN.md §5 ===")
	rows, err := bench.Ablations(10, nQ, 3, seed, solveTO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatAblations(rows))
	fmt.Println()

	fmt.Println("=== Skew routing — two-choice vs. single-choice (hot key 80%) ===")
	n := 4000
	if quick {
		n = 1000
	}
	skew, err := bench.SkewAblations(n, 4, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSkewAblations(skew))
	fmt.Println()
}

// fig7Series is one Fig. 7 run at a fixed query count, as serialized
// into the -json output.
type fig7Series struct {
	Queries int          `json:"queries"`
	Results []fig7Result `json:"results"`
}

// fig7Result is one strategy bar of Figs. 7b–7d in machine-readable
// form; BENCH_fig7.json tracks these across PRs.
type fig7Result struct {
	Strategy      string  `json:"strategy"`
	ThroughputTPS float64 `json:"throughput_tps"`
	MemoryBytes   int64   `json:"memory_bytes"`
	IndexBytes    int64   `json:"index_bytes"`
	AvgLatencyNS  int64   `json:"avg_latency_ns"`
	ProbeTuples   int64   `json:"probe_tuples"`
	Results       int64   `json:"results"`
	EvictedEpochs int64   `json:"evicted_epochs"`
	Stores        int     `json:"stores"`
	WallTimeNS    int64   `json:"wall_time_ns"`
}

func runFig7(sf float64, quick bool, seed uint64) []fig7Series {
	var series []fig7Series
	for _, nq := range []int{5, 10} {
		if quick && nq == 10 {
			continue
		}
		fmt.Printf("=== Fig. 7b/7c/7d — %d TPC-H queries, SF %g ===\n", nq, sf)
		res, err := bench.Fig7(bench.Fig7Config{SF: sf, NumQueries: nq, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatFig7(res))
		fmt.Println()
		s := fig7Series{Queries: nq}
		for _, r := range res {
			s.Results = append(s.Results, fig7Result{
				Strategy:      string(r.Strategy),
				ThroughputTPS: r.ThroughputTPS,
				MemoryBytes:   r.MemoryBytes,
				IndexBytes:    r.IndexBytes,
				AvgLatencyNS:  r.AvgLatency.Nanoseconds(),
				ProbeTuples:   r.ProbeTuples,
				Results:       r.Results,
				EvictedEpochs: r.EvictedEpochs,
				Stores:        r.Stores,
				WallTimeNS:    r.WallTime.Nanoseconds(),
			})
		}
		series = append(series, s)
	}
	return series
}

func writeFig7JSON(path string, sf float64, seed uint64, series []fig7Series, longstate []bench.LongStateResult, skew []bench.SkewResult, clusterRows []bench.ClusterBenchResult, churnRows []bench.ChurnResult) error {
	doc := struct {
		Figure    string                     `json:"figure"`
		SF        float64                    `json:"sf"`
		Seed      uint64                     `json:"seed"`
		Series    []fig7Series               `json:"series"`
		LongState []bench.LongStateResult    `json:"longstate,omitempty"`
		Skew      []bench.SkewResult         `json:"skew,omitempty"`
		Cluster   []bench.ClusterBenchResult `json:"cluster,omitempty"`
		Churn     []bench.ChurnResult        `json:"churn,omitempty"`
	}{Figure: "7", SF: sf, Seed: seed, Series: series, LongState: longstate, Skew: skew, Cluster: clusterRows, Churn: churnRows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runOverload(quick bool, seed uint64) {
	cfg := bench.OverloadConfig{Seed: seed}
	if quick {
		// Shorter stream, proportionally tighter budget: the unbounded
		// substrate must still hit the wall for the comparison to show.
		cfg.Tuples = 8000
		cfg.MemoryLimitBytes = 256 << 10
	}
	fmt.Println("=== Overload survival — execution substrates under one memory budget ===")
	results, err := bench.OverloadSurvival(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatOverload(results))
	fmt.Println()
}

// runLongState drives the state-backend shoot-out (DESIGN.md §10,
// §15) on every backend — or only the ones named — and dies on a
// vacuous or inconclusive stage (an EvictFail run that survives its
// budget, a survivor that never evicts, a tiered run that sheds).
func runLongState(quick bool, seed uint64, only ...bench.StateBackendKind) []bench.LongStateResult {
	cfg := bench.LongStateConfig{Seed: seed}
	if quick {
		cfg.Tuples = 6000
		cfg.PruneWindow = 1024
	}
	fmt.Println("=== Long state — state-backend shoot-out (probe / prune / eviction) ===")
	results, err := bench.LongState(cfg, only...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatLongState(results))
	fmt.Println()
	return results
}

// runSkew drives the degree-aware skew scenario and dies on a vacuous
// run (no split keys declared) or when splitting fails to reduce the
// handled-tuple imbalance; results must match between plans.
func runSkew(seed uint64) []bench.SkewResult {
	fmt.Println("=== Skew — zipf-keyed TPC-H stream: uniform-cost vs degree-aware plan ===")
	rows, err := bench.Skew(bench.SkewConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSkew(rows))
	fmt.Println()
	return rows
}

// runClusterBench drives the scale-out sweep (DESIGN.md §13) and dies
// when shard counts disagree on results or drops, or when admission
// control never sheds.
func runClusterBench(seed uint64) []bench.ClusterBenchResult {
	fmt.Println("=== Cluster — TPC-H stream across 1/2/4 shards (key-hash routing, token-bucket admission) ===")
	rows, err := bench.ClusterBench(bench.ClusterBenchConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatCluster(rows))
	fmt.Println()
	return rows
}

// runSimSweep drives the deterministic-schedule sweep (DESIGN.md §9)
// and exits non-zero on any seed that deviates from the oracle, any
// replay divergence, or a fault scenario that fails to reproduce.
func runSimSweep(seeds int, quick bool, seed uint64, backend bench.StateBackendKind) {
	cfg := bench.SimSweepConfig{Seeds: seeds, Seed: seed, Backend: backend}
	if quick && cfg.Seeds > 8 {
		cfg.Seeds = 8
	}
	fmt.Printf("=== Sim sweep — TPC-H equivalence oracle across %d seeded schedules (%s backend) ===\n", cfg.Seeds, backend)
	res, err := bench.SimSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSimSweep(res))
	fmt.Println()
}

// chaosOverheadLimitPct is the CI gate on the write-ahead-logging tax:
// journaling every ingest may cost at most this much steady-state
// throughput over the undurable baseline. Checkpoint cost is reported
// alongside but not gated — it is a tunable durability-vs-replay-time
// tradeoff (cadence, epoch granularity), not a fixed ingest-path tax.
const chaosOverheadLimitPct = 10

// runChaos drives the crash-recovery chaos suite (DESIGN.md §11): the
// seeded crash-restart-replay sweep across both state backends with
// task panics and torn WAL tails, plus the WAL-overhead measurement.
// Exits non-zero on any run that is not exactly-once or when the
// durability tax exceeds the gate.
func runChaos(seeds int, quick bool, seed uint64) {
	cfg := bench.ChaosConfig{Seeds: seeds, Seed: seed, Quick: quick}
	fmt.Printf("=== Chaos — crash-restart-replay sweep + durability tax ===\n")
	res, err := bench.Chaos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatChaos(res))
	fmt.Println()
	if res.OverheadPct > chaosOverheadLimitPct {
		log.Fatalf("write-ahead-logging tax %.1f%% exceeds the %d%% gate", res.OverheadPct, chaosOverheadLimitPct)
	}
}

// readFig7JSON loads a baseline written by -json.
func readFig7JSON(path string) (sf float64, seed uint64, series []fig7Series, longstate []bench.LongStateResult, skew []bench.SkewResult, clusterRows []bench.ClusterBenchResult, churnRows []bench.ChurnResult, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, nil, nil, nil, nil, err
	}
	var doc struct {
		SF        float64                    `json:"sf"`
		Seed      uint64                     `json:"seed"`
		Series    []fig7Series               `json:"series"`
		LongState []bench.LongStateResult    `json:"longstate"`
		Skew      []bench.SkewResult         `json:"skew"`
		Cluster   []bench.ClusterBenchResult `json:"cluster"`
		Churn     []bench.ChurnResult        `json:"churn"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0, nil, nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.SF, doc.Seed, doc.Series, doc.LongState, doc.Skew, doc.Cluster, doc.Churn, nil
}

// runChurn drives the incremental re-optimization sweep; the bench
// itself dies when the incremental plan ever costs more than scratch.
func runChurn(quick bool, seed uint64) []bench.ChurnResult {
	nQs := []int{100, 500, 1000}
	if quick {
		nQs = []int{50, 100}
	}
	fmt.Println("=== Churn — re-optimization under query churn: scratch vs incremental ===")
	rows, err := bench.Churn(bench.ChurnConfig{Seed: seed}, nQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatChurn(rows))
	fmt.Println()
	return rows
}

// compareChurn gates the incremental re-optimizer against the
// baseline: plan costs are deterministic in (seed, node budget) and
// must match exactly for both arms; optimizer wall time may not
// regress beyond the threshold. A quick run carries fewer query
// counts, so only counts present in both sides are gated.
func compareChurn(baseline, current []bench.ChurnResult, threshold float64) bool {
	baseOf := map[int]bench.ChurnResult{}
	for _, r := range baseline {
		baseOf[r.NQ] = r
	}
	regressions := 0
	compared := 0
	for _, r := range current {
		b, ok := baseOf[r.NQ]
		if !ok {
			fmt.Printf("(no churn baseline for %d queries — skipped)\n", r.NQ)
			continue
		}
		compared++
		if r.ScratchCost != b.ScratchCost || r.IncrementalCost != b.IncrementalCost {
			regressions++
			fmt.Printf("REGRESSION  churn nQ=%-4d plan cost scratch %g -> %g, incremental %g -> %g (plan drift!)\n",
				r.NQ, b.ScratchCost, r.ScratchCost, b.IncrementalCost, r.IncrementalCost)
		}
		if b.IncrementalWall > 0 {
			if d := float64(r.IncrementalWall-b.IncrementalWall) / float64(b.IncrementalWall); d > threshold {
				regressions++
				fmt.Printf("REGRESSION  churn nQ=%-4d incremental wall %+.1f%%\n", r.NQ, d*100)
			}
		}
	}
	if compared == 0 {
		fmt.Println("GATE FAILURE: baseline has a churn section but no query count matched the current run")
		return false
	}
	if regressions > 0 {
		fmt.Printf("%d churn regression(s)\n", regressions)
		return false
	}
	fmt.Println("churn: no regressions")
	return true
}

// compareCluster gates the scale-out scenario against the baseline:
// result counts and admission drops are deterministic in (seed, stream
// length) and must match exactly; per-tuple ingest cost and routing
// imbalance may not regress beyond the threshold.
func compareCluster(baseline, current []bench.ClusterBenchResult, threshold float64) bool {
	baseOf := map[int]bench.ClusterBenchResult{}
	for _, r := range baseline {
		baseOf[r.Shards] = r
	}
	regressions := 0
	compared := 0
	for _, r := range current {
		b, ok := baseOf[r.Shards]
		if !ok {
			fmt.Printf("(no cluster baseline for %d shards — skipped)\n", r.Shards)
			continue
		}
		compared++
		if r.Results != b.Results {
			regressions++
			fmt.Printf("REGRESSION  cluster n=%-2d result count %d -> %d (correctness drift!)\n", r.Shards, b.Results, r.Results)
		}
		if r.AdmissionDrops != b.AdmissionDrops {
			regressions++
			fmt.Printf("REGRESSION  cluster n=%-2d admission drops %d -> %d (front-door drift!)\n", r.Shards, b.AdmissionDrops, r.AdmissionDrops)
		}
		if b.IngestNsPerTuple > 0 {
			if d := (r.IngestNsPerTuple - b.IngestNsPerTuple) / b.IngestNsPerTuple; d > threshold {
				regressions++
				fmt.Printf("REGRESSION  cluster n=%-2d ingest ns/tuple %+.1f%%\n", r.Shards, d*100)
			}
		}
		if b.Imbalance > 0 {
			if d := (r.Imbalance - b.Imbalance) / b.Imbalance; d > threshold {
				regressions++
				fmt.Printf("REGRESSION  cluster n=%-2d imbalance %+.1f%%\n", r.Shards, d*100)
			}
		}
	}
	if compared == 0 {
		fmt.Println("GATE FAILURE: baseline has a cluster section but no shard count matched the current run")
		return false
	}
	if regressions > 0 {
		fmt.Printf("%d cluster regression(s)\n", regressions)
		return false
	}
	fmt.Println("cluster: no regressions")
	return true
}

// flagWasSet reports whether the named flag was passed explicitly on
// the command line (as opposed to sitting at its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// compareLongState gates the state-backend shoot-out against the
// baseline. Alloc counts are deterministic and must not grow; probe,
// prune, and cold-probe ns/op may not regress beyond the threshold.
// The tiered backend's lossless invariants — zero evictions in both
// the eviction stage and the 10×-window stage — are gated absolutely,
// regardless of what the baseline recorded.
func compareLongState(baseline, current []bench.LongStateResult, threshold float64) bool {
	baseOf := map[string]bench.LongStateResult{}
	for _, r := range baseline {
		baseOf[r.Backend] = r
	}
	regressions := 0
	compared := 0
	for _, r := range current {
		if r.Backend == "tiered" {
			if r.EvictedEpochs != 0 || r.EvictedTuples != 0 {
				regressions++
				fmt.Printf("REGRESSION  longstate tiered evicted %d epochs / %d tuples — must demote, never shed\n", r.EvictedEpochs, r.EvictedTuples)
			}
			if r.Tiered != nil && r.Tiered.EvictedTuples != 0 {
				regressions++
				fmt.Printf("REGRESSION  longstate tiered 10x stage evicted %d tuples\n", r.Tiered.EvictedTuples)
			}
		}
		b, ok := baseOf[r.Backend]
		if !ok {
			fmt.Printf("(no longstate baseline for backend %s — skipped)\n", r.Backend)
			continue
		}
		compared++
		if r.ProbeAllocsOp > b.ProbeAllocsOp {
			regressions++
			fmt.Printf("REGRESSION  longstate %-9s probe allocs/op %d -> %d\n", r.Backend, b.ProbeAllocsOp, r.ProbeAllocsOp)
		}
		if r.PruneAllocsOp > b.PruneAllocsOp {
			regressions++
			fmt.Printf("REGRESSION  longstate %-9s prune allocs/op %d -> %d\n", r.Backend, b.PruneAllocsOp, r.PruneAllocsOp)
		}
		if b.ProbeNsOp > 0 {
			if d := float64(r.ProbeNsOp-b.ProbeNsOp) / float64(b.ProbeNsOp); d > threshold {
				regressions++
				fmt.Printf("REGRESSION  longstate %-9s probe ns/op %+.1f%%\n", r.Backend, d*100)
			}
		}
		if b.PruneNsOp > 0 {
			if d := float64(r.PruneNsOp-b.PruneNsOp) / float64(b.PruneNsOp); d > threshold {
				regressions++
				fmt.Printf("REGRESSION  longstate %-9s prune ns/op %+.1f%%\n", r.Backend, d*100)
			}
		}
		if b.Tiered != nil && r.Tiered != nil && b.Tiered.ColdProbeNsOp > 0 {
			if d := float64(r.Tiered.ColdProbeNsOp-b.Tiered.ColdProbeNsOp) / float64(b.Tiered.ColdProbeNsOp); d > threshold {
				regressions++
				fmt.Printf("REGRESSION  longstate tiered cold probe ns/op %+.1f%%\n", d*100)
			}
		}
	}
	if compared == 0 {
		fmt.Println("GATE FAILURE: baseline has a longstate section but no backend matched the current run")
		return false
	}
	if regressions > 0 {
		fmt.Printf("%d longstate regression(s)\n", regressions)
		return false
	}
	fmt.Println("longstate: no regressions")
	return true
}

// compareSkew gates the skew scenario against the baseline: result
// counts are deterministic in (seed, stream length) and must match
// exactly; the degree-aware plan's imbalance and per-tuple probe time
// may not regress beyond the threshold.
func compareSkew(baseline, current []bench.SkewResult, threshold float64) bool {
	baseOf := map[string]bench.SkewResult{}
	for _, r := range baseline {
		baseOf[r.Plan] = r
	}
	regressions := 0
	compared := 0
	for _, r := range current {
		b, ok := baseOf[r.Plan]
		if !ok {
			fmt.Printf("(no skew baseline for plan %s — skipped)\n", r.Plan)
			continue
		}
		compared++
		if r.Results != b.Results {
			regressions++
			fmt.Printf("REGRESSION  skew %-13s result count %d -> %d (correctness drift!)\n", r.Plan, b.Results, r.Results)
		}
		if r.SplitKeys != b.SplitKeys {
			regressions++
			fmt.Printf("REGRESSION  skew %-13s split_keys %d -> %d (plan drift!)\n", r.Plan, b.SplitKeys, r.SplitKeys)
		}
		if b.Imbalance > 0 {
			if d := (r.Imbalance - b.Imbalance) / b.Imbalance; d > threshold {
				regressions++
				fmt.Printf("REGRESSION  skew %-13s imbalance %+.1f%%\n", r.Plan, d*100)
			}
		}
		if b.ProbeNsPerTuple > 0 {
			if d := (r.ProbeNsPerTuple - b.ProbeNsPerTuple) / b.ProbeNsPerTuple; d > threshold {
				regressions++
				fmt.Printf("REGRESSION  skew %-13s probe ns/tuple %+.1f%%\n", r.Plan, d*100)
			}
		}
	}
	if compared == 0 {
		fmt.Println("GATE FAILURE: baseline has a skew section but no plan matched the current run")
		return false
	}
	if regressions > 0 {
		fmt.Printf("%d skew regression(s)\n", regressions)
		return false
	}
	fmt.Println("skew: no regressions")
	return true
}

// compareFig7 diffs the current Fig. 7 run against the baseline and
// reports whether the run is regression-free. Deterministic work
// metrics (probe tuples, memory, result counts) and the wall-clock
// throughput are gated at the threshold; latency is reported but not
// gated (it is wall-clock noise at bench scale).
func compareFig7(path string, baseline, current []fig7Series, threshold float64) bool {
	baseOf := map[int]map[string]fig7Result{}
	for _, s := range baseline {
		m := map[string]fig7Result{}
		for _, r := range s.Results {
			m[r.Strategy] = r
		}
		baseOf[s.Queries] = m
	}

	fmt.Printf("=== Comparison against %s (threshold %.0f%%) ===\n", path, threshold*100)
	regressions := 0
	compared := 0
	// worse flags metric regressions: delta is the fractional change in
	// the "bad" direction (positive = regressed).
	check := func(queries int, strategy, metric string, delta float64) {
		if delta <= threshold {
			return
		}
		regressions++
		fmt.Printf("REGRESSION  q=%-3d %-5s %-14s %+.1f%%\n", queries, strategy, metric, delta*100)
	}
	for _, s := range current {
		base, ok := baseOf[s.Queries]
		if !ok {
			fmt.Printf("(no baseline series for %d queries — skipped)\n", s.Queries)
			continue
		}
		for _, r := range s.Results {
			b, ok := base[r.Strategy]
			if !ok {
				fmt.Printf("(no baseline for strategy %s — skipped)\n", r.Strategy)
				continue
			}
			compared++
			if b.ThroughputTPS > 0 {
				check(s.Queries, r.Strategy, "throughput", (b.ThroughputTPS-r.ThroughputTPS)/b.ThroughputTPS)
			}
			if b.MemoryBytes > 0 {
				check(s.Queries, r.Strategy, "memory", float64(r.MemoryBytes-b.MemoryBytes)/float64(b.MemoryBytes))
			}
			if b.ProbeTuples > 0 {
				check(s.Queries, r.Strategy, "probe_tuples", float64(r.ProbeTuples-b.ProbeTuples)/float64(b.ProbeTuples))
			}
			if r.Results != b.Results {
				regressions++
				fmt.Printf("REGRESSION  q=%-3d %-5s result count %d -> %d (correctness drift!)\n",
					s.Queries, r.Strategy, b.Results, r.Results)
			}
			// Absolute gate, not a relative one: the Fig. 7 workload
			// fits in memory, so ANY eviction means the state budget
			// or its accounting broke.
			if r.EvictedEpochs != 0 {
				regressions++
				fmt.Printf("REGRESSION  q=%-3d %-5s evicted_epochs %d, want 0 (state budget misfiring!)\n",
					s.Queries, r.Strategy, r.EvictedEpochs)
			}
			if b.AvgLatencyNS > 0 {
				d := float64(r.AvgLatencyNS-b.AvgLatencyNS) / float64(b.AvgLatencyNS)
				if d > threshold {
					fmt.Printf("note        q=%-3d %-5s latency %+.1f%% (not gated)\n", s.Queries, r.Strategy, d*100)
				}
			}
		}
	}
	// A gate that compared nothing is a broken gate, not a green one
	// (empty baseline, mismatched query counts, strategy drift).
	if compared == 0 {
		fmt.Println("GATE FAILURE: no strategy of the current run found a baseline to compare against")
		return false
	}
	if regressions == 0 {
		fmt.Println("no regressions")
		return true
	}
	fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, threshold*100)
	return false
}

func runFig8(variant byte, quick bool, seed uint64) {
	cfg := bench.Fig8Config{Seed: seed}
	if quick {
		cfg.Before, cfg.After = time.Second, time.Second
		cfg.Rate = 1000
	}
	fmt.Printf("=== Fig. 8%c — adaptive vs static latency ===\n", variant)
	adaptive, err := bench.Fig8(variant, true, cfg)
	if err != nil {
		log.Fatal(err)
	}
	static, err := bench.Fig8(variant, false, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig8(adaptive, static))
	fmt.Println()
}

func runFig9Cost(fig string, quick bool, solveTO time.Duration, seed uint64) {
	nQs := []int{20, 40, 60, 80, 100}
	if quick {
		nQs = []int{20, 40}
	}
	cfg := bench.Fig9Config{Seed: seed, SolveLimit: solveTO}
	switch fig {
	case "9a":
		cfg.Relations = 10
		fmt.Println("=== Fig. 9a/9b — probe cost & problem size, 10 input relations ===")
	case "9c":
		cfg.Relations = 100
		fmt.Println("=== Fig. 9c/9d — probe cost & problem size, 100 input relations ===")
	case "9e":
		cfg.Relations = 100
		fmt.Println("=== Fig. 9e — optimization runtime, 100 input relations ===")
	}
	points, err := bench.Fig9Cost(cfg, nQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig9Cost(points))
	fmt.Println()
}

func runFig9Sizes(quick bool, solveTO time.Duration, seed uint64) {
	sizes := []int{3, 4, 5}
	nQs := []int{10, 20, 30}
	cfg := bench.Fig9Config{Relations: 100, Seed: seed, SolveLimit: solveTO, CapCandidates: 24}
	if quick {
		sizes = []int{3, 4}
		nQs = []int{10}
	}
	fmt.Println("=== Fig. 9f — optimization runtime by query size, 100 input relations ===")
	points, err := bench.Fig9QuerySizes(cfg, sizes, nQs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig9Sizes(points))
	fmt.Println()
}
