// Command clash-run executes a workload of continuous queries over a
// generated TPC-H stream on the CLASH runtime and reports metrics.
//
// Usage:
//
//	clash-run -queries 5 -sf 0.002 -strategy cmqo
//	clash-run -workload my.txt -sf 0.01
//
// With -workload, queries must reference TPC-H tables (region, nation,
// supplier, customer, part, partsupp, orders, lineitem).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"clash/internal/bench"
	"clash/internal/broker"
	"clash/internal/core"
	"clash/internal/query"
	"clash/internal/runtime"
	"clash/internal/tpch"
	"clash/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clash-run: ")
	var (
		workloadPath = flag.String("workload", "", "workload file over TPC-H tables (default: Fig. 7a queries)")
		numQueries   = flag.Int("queries", 5, "use the paper's 5- or 10-query TPC-H workload")
		sf           = flag.Float64("sf", 0.002, "TPC-H scale factor")
		strategy     = flag.String("strategy", "cmqo", "fi|si|fs|ss|cmqo")
		parallelism  = flag.Int("parallelism", 2, "store parallelism")
		seed         = flag.Uint64("seed", 42, "generator seed")
		verbose      = flag.Bool("v", false, "print the plan and topology")
	)
	flag.Parse()

	var queries []*query.Query
	if *workloadPath != "" {
		b, err := os.ReadFile(*workloadPath)
		if err != nil {
			log.Fatal(err)
		}
		var cat *query.Catalog
		queries, cat, err = query.ParseWorkload(string(b))
		if err != nil {
			log.Fatal(err)
		}
		_ = cat
		full := tpch.Catalog()
		for _, q := range queries {
			if err := full.Validate(q); err != nil {
				log.Fatalf("workload must use TPC-H tables: %v", err)
			}
		}
	} else if *numQueries >= 10 {
		queries = tpch.Fig7TenQueries()
	} else {
		queries = tpch.Fig7Queries()
	}
	cat := tpch.Catalog()

	tables := map[string]bool{}
	for _, q := range queries {
		for _, r := range q.Relations {
			tables[r] = true
		}
	}
	var tableList []string
	for _, t := range tpch.Tables() {
		if tables[t] {
			tableList = append(tableList, t)
		}
	}

	fmt.Printf("generating TPC-H data at SF %g for %v ...\n", *sf, tableList)
	bk := broker.New()
	if err := tpch.FillBroker(bk, *sf, *seed, tuple.Duration(time.Second), tableList); err != nil {
		log.Fatal(err)
	}
	records := bk.Interleave(tableList...)
	fmt.Printf("%d records\n", len(records))

	// Estimate characteristics, optimize, compile.
	est := bench.EstimateFromRecords(cat, queries, records, time.Second)
	o := core.NewOptimizer(core.Options{StoreParallelism: *parallelism})
	shared := true
	var plans []*core.Plan
	var err error
	switch strings.ToLower(*strategy) {
	case "cmqo":
		var p *core.Plan
		p, err = o.Optimize(queries, est)
		plans = []*core.Plan{p}
	case "fs", "ss":
		plans, err = o.OptimizeIndividually(queries, est)
	case "fi", "si":
		shared = false
		plans, err = o.OptimizeIndividually(queries, est)
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		for _, p := range plans {
			fmt.Print(p)
		}
	}
	topo, err := core.Compile(plans, core.CompileOptions{Shared: shared, Parallelism: *parallelism})
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Print(topo)
	}
	fmt.Printf("topology: %d stores, %d tasks\n", len(topo.Stores), topo.TotalTasks())

	eng := runtime.New(runtime.Config{Catalog: cat})
	if err := eng.Install(topo, 0); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, r := range records {
		if err := eng.Ingest(r.Relation, r.TS, r.Vals...); err != nil {
			log.Fatal(err)
		}
	}
	eng.Drain()
	wall := time.Since(start)
	m := eng.Metrics().Snapshot()
	eng.Stop()

	fmt.Printf("\nprocessed %d tuples in %v (%.0f t/s)\n", m.Ingested, wall.Round(time.Millisecond),
		float64(m.Ingested)/wall.Seconds())
	fmt.Printf("probe tuples sent: %d, stored: %d (%.2f MiB)\n", m.ProbeSent, m.Stored,
		float64(m.StoreBytes)/(1<<20))
	fmt.Printf("results: %d (avg latency %v)\n", m.Results, m.AvgLatency.Round(time.Microsecond))
	for q, n := range m.ByQuery {
		fmt.Printf("  %s: %d results\n", q, n)
	}
}
