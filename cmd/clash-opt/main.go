// Command clash-opt optimizes a workload of multi-way stream join
// queries and prints the materializable intermediate results, the chosen
// probe orders, the store partitioning, and the compiled topology.
//
// Usage:
//
//	clash-opt -workload workload.txt [-rate 100] [-parallelism 4] [-individual]
//	echo "q1: R(a) S(a,b) T(b)" | clash-opt
//
// Workload files contain one query per line in the paper's notation,
// e.g. "q1: R(a) S(a,b) T(b)"; '#' starts a comment.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"clash/internal/core"
	"clash/internal/mir"
	"clash/internal/query"
	"clash/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clash-opt: ")
	var (
		workloadPath = flag.String("workload", "", "workload file (default: stdin)")
		rate         = flag.Float64("rate", 100, "assumed arrival rate per relation (tuples/s)")
		defaultSel   = flag.Float64("sel", 0.01, "assumed selectivity for every predicate")
		parallelism  = flag.Int("parallelism", 4, "store parallelism")
		individual   = flag.Bool("individual", false, "optimize each query in isolation")
		noMIRs       = flag.Bool("no-mirs", false, "disable materialized intermediate results")
		noPart       = flag.Bool("no-partitioning", false, "disable partition decorations")
		showTopo     = flag.Bool("topology", true, "print the compiled topology")
		showMIRs     = flag.Bool("mirs", true, "print the enumerated MIRs")
	)
	flag.Parse()

	text, err := readWorkload(*workloadPath)
	if err != nil {
		log.Fatal(err)
	}
	queries, cat, err := query.ParseWorkload(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d queries over %d relations: %v\n\n", len(queries), cat.Len(), cat.Names())

	est := stats.NewEstimates(*defaultSel)
	for _, name := range cat.Names() {
		est.SetRate(name, *rate)
	}

	if *showMIRs {
		fmt.Println("materializable intermediate results:")
		for _, m := range mir.Enumerate(queries) {
			cands := mir.PartitionCandidates(m, queries)
			fmt.Printf("  %-8s %-40s partition candidates: %v\n", m.Label(), m.Key(), cands)
		}
		fmt.Println()
	}

	opts := core.Options{
		StoreParallelism:    *parallelism,
		DisableMIRs:         *noMIRs,
		DisablePartitioning: *noPart,
	}
	o := core.NewOptimizer(opts)

	var plans []*core.Plan
	if *individual {
		plans, err = o.OptimizeIndividually(queries, est)
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, p := range plans {
			fmt.Print(p)
			total += p.Objective
		}
		fmt.Printf("\ntotal individual probe cost: %.4g\n", total)
	} else {
		plan, err := o.Optimize(queries, est)
		if err != nil {
			log.Fatal(err)
		}
		plans = []*core.Plan{plan}
		fmt.Print(plan)
		s := plan.Stats
		fmt.Printf("\nILP: %d variables, %d constraints, %d probe orders, %d MIRs\n",
			s.Variables, s.Constraints, s.ProbeOrders, s.MIRs)
		fmt.Printf("build %v, solve %v (%d nodes, %s)\n", s.BuildTime, s.SolveTime, s.Nodes, s.Status)
	}

	if *showTopo {
		topo, err := core.Compile(plans, core.CompileOptions{Shared: !*individual, Parallelism: *parallelism})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(topo)
	}
}

func readWorkload(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
