// Command clash-tpch emits generated TPC-H data as CSV for inspection,
// and prints the derived join graph and query workloads.
//
// Usage:
//
//	clash-tpch -table supplier -sf 0.001        # rows as CSV
//	clash-tpch -graph                           # join graph
//	clash-tpch -queries 10                      # the Fig. 7a workloads
//	clash-tpch -random 8 -size 4 -seed 7        # random workload
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"clash/internal/tpch"
	"clash/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clash-tpch: ")
	var (
		table  = flag.String("table", "", "table to emit as CSV")
		sf     = flag.Float64("sf", 0.001, "scale factor")
		seed   = flag.Uint64("seed", 42, "generator seed")
		limit  = flag.Int("limit", 0, "emit at most this many rows (0 = all)")
		graph  = flag.Bool("graph", false, "print the join graph")
		fig7   = flag.Int("queries", 0, "print the 5- or 10-query Fig. 7a workload")
		random = flag.Int("random", 0, "print a random workload of this many queries")
		size   = flag.Int("size", 3, "relations per random query")
	)
	flag.Parse()

	switch {
	case *graph:
		fmt.Println("join graph (PK-FK edges and type-compatible pairs):")
		for _, p := range tpch.JoinGraph() {
			fmt.Printf("  %s\n", p)
		}
	case *fig7 > 0:
		qs := tpch.Fig7Queries()
		if *fig7 >= 10 {
			qs = tpch.Fig7TenQueries()
		}
		for _, q := range qs {
			preds := make([]string, len(q.Preds))
			for i, p := range q.Preds {
				preds[i] = p.String()
			}
			fmt.Printf("%s  [%s]\n", q, strings.Join(preds, " & "))
		}
	case *random > 0:
		for _, q := range tpch.RandomQueries(*random, *size, *seed) {
			preds := make([]string, len(q.Preds))
			for i, p := range q.Preds {
				preds[i] = p.String()
			}
			fmt.Printf("%s  [%s]\n", q, strings.Join(preds, " & "))
		}
	case *table != "":
		emitCSV(*table, *sf, *seed, *limit)
	default:
		fmt.Println("tables and cardinalities at SF", *sf)
		for _, t := range tpch.Tables() {
			fmt.Printf("  %-10s %10d rows\n", t, tpch.Cardinality(t, *sf))
		}
		fmt.Println("\nuse -table, -graph, -queries, or -random; see -help")
	}
}

func emitCSV(table string, sf float64, seed uint64, limit int) {
	cat := tpch.Catalog()
	rel := cat.Relation(table)
	if rel == nil {
		log.Fatalf("unknown table %q (want one of %v)", table, tpch.Tables())
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, strings.Join(rel.Attrs, ","))
	n := 0
	err := tpch.Generate(table, sf, seed, func(vals []tuple.Value) bool {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
		n++
		return limit <= 0 || n < limit
	})
	if err != nil {
		log.Fatal(err)
	}
}
